#include "storage/snapshot.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <type_traits>

#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "rdf/compressed_index.h"
#include "rdf/delta_layer.h"
#include "storage/snapshot_io.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace re2xolap::storage {

// The triple-index sections are raw memory images of EncodedTriple arrays;
// the format is only valid if the in-memory layout is the expected packed
// little-endian (u32 s, u32 p, u32 o).
static_assert(sizeof(rdf::EncodedTriple) == 12,
              "EncodedTriple layout is part of the snapshot format");
static_assert(std::is_trivially_copyable_v<rdf::EncodedTriple>);
static_assert(std::endian::native == std::endian::little,
              "snapshot images are little-endian");

namespace {

using rdf::EncodedTriple;
using rdf::TermId;

// Fixed header prefix: magic(8) version(4) section_count(4) file_bytes(8)
// freeze_epoch(8) triple_count(8) term_count(8) flags(8).
constexpr uint64_t kFixedHeaderBytes = 56;
constexpr uint64_t kSectionEntryBytes = 32;
constexpr uint32_t kMaxSections = 64;
// Poll the ExecGuard every this many loop iterations in term/posting loops.
constexpr size_t kGuardStride = 1 << 16;

uint64_t AlignUp(uint64_t v) {
  return (v + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

uint64_t HeaderBytes(size_t section_count) {
  return kFixedHeaderBytes + section_count * kSectionEntryBytes + 8;
}

// Permutation orders, mirroring the (internal) comparators the TripleStore
// sorts with; load-time validation re-checks sortedness so binary searches
// on an adopted image behave exactly like on a freshly frozen store.
// Functors (not functions) so the validation loop instantiates per order
// and the comparison inlines instead of going through a function pointer.
struct SpoLessCmp {
  bool operator()(const EncodedTriple& a, const EncodedTriple& b) const {
    if (a.s != b.s) return a.s < b.s;
    if (a.p != b.p) return a.p < b.p;
    return a.o < b.o;
  }
};
struct PosLessCmp {
  bool operator()(const EncodedTriple& a, const EncodedTriple& b) const {
    if (a.p != b.p) return a.p < b.p;
    if (a.o != b.o) return a.o < b.o;
    return a.s < b.s;
  }
};
struct OspLessCmp {
  bool operator()(const EncodedTriple& a, const EncodedTriple& b) const {
    if (a.o != b.o) return a.o < b.o;
    if (a.s != b.s) return a.s < b.s;
    return a.p < b.p;
  }
};
inline constexpr SpoLessCmp SpoLess{};
inline constexpr PosLessCmp PosLess{};
inline constexpr OspLessCmp OspLess{};

util::Status GuardCheck(const util::ExecGuard* guard) {
  return guard == nullptr ? util::Status::OK() : guard->Check();
}

/// Runs fn(i) for i in [0, n), across `pool` when available. `fn` must be
/// exception-free (it reports problems through per-index slots).
void RunParallel(util::ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (pool != nullptr && pool->size() > 0) {
    pool->ParallelFor(n, fn);
  } else {
    for (size_t i = 0; i < n; ++i) fn(i);
  }
}

// --- section payload encoders ------------------------------------------------

util::Status EncodeDictionary(const rdf::Dictionary& dict,
                              const util::ExecGuard* guard,
                              std::string* out) {
  ByteWriter w;
  w.Reserve(dict.size() * 24);
  w.U64(dict.size());
  util::Status st;
  size_t i = 0;
  dict.ForEach([&](TermId, const rdf::Term& t) {
    if (!st.ok()) return;
    if (++i % kGuardStride == 0) st = GuardCheck(guard);
    w.U8(static_cast<uint8_t>(t.kind));
    w.U8(static_cast<uint8_t>(t.literal_type));
    w.Str(t.value);
  });
  RE2X_RETURN_IF_ERROR(st);
  *out = w.Take();
  return util::Status::OK();
}

util::Status EncodeStats(
    const std::unordered_map<TermId, rdf::PredicateStats>& stats,
    std::string* out) {
  // Deterministic images: emit in predicate-id order.
  std::vector<TermId> keys;
  keys.reserve(stats.size());
  for (const auto& [p, st] : stats) keys.push_back(p);
  std::sort(keys.begin(), keys.end());
  ByteWriter w;
  w.Reserve(8 + keys.size() * 28);
  w.U64(keys.size());
  for (TermId p : keys) {
    const rdf::PredicateStats& st = stats.at(p);
    w.U32(p);
    w.U64(st.triple_count);
    w.U64(st.distinct_subjects);
    w.U64(st.distinct_objects);
  }
  *out = w.Take();
  return util::Status::OK();
}

void EncodePostingsMap(
    const std::unordered_map<std::string, std::vector<TermId>>& map,
    ByteWriter* w) {
  // Deterministic images: emit entries in key order.
  std::vector<const std::pair<const std::string, std::vector<TermId>>*> order;
  order.reserve(map.size());
  for (const auto& entry : map) order.push_back(&entry);
  std::sort(order.begin(), order.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  w->U64(order.size());
  for (const auto* entry : order) {
    w->Str(entry->first);
    w->U64(entry->second.size());
    for (TermId id : entry->second) w->U32(id);
  }
}

util::Status EncodeTextIndex(const rdf::TextIndex& text,
                             const util::ExecGuard* guard, std::string* out) {
  RE2X_RETURN_IF_ERROR(GuardCheck(guard));
  ByteWriter w;
  w.U64(text.indexed_literal_count());
  EncodePostingsMap(text.exact_map(), &w);
  RE2X_RETURN_IF_ERROR(GuardCheck(guard));
  EncodePostingsMap(text.postings_map(), &w);
  *out = w.Take();
  return util::Status::OK();
}

util::Status EncodeVsg(const VsgImage& vsg, std::string* out) {
  ByteWriter w;
  w.U64(vsg.nodes.size());
  for (const core::VsgNode& n : vsg.nodes) {
    w.I32(n.id);
    w.U8(n.is_root ? 1 : 0);
    w.Str(n.name);
    w.U64(n.members.size());
    for (TermId m : n.members) w.U32(m);
    w.U64(n.attribute_predicates.size());
    for (TermId a : n.attribute_predicates) w.U32(a);
  }
  w.U64(vsg.edges.size());
  for (const core::VsgEdge& e : vsg.edges) {
    w.I32(e.from);
    w.I32(e.to);
    w.U32(e.predicate);
  }
  w.U64(vsg.measures.size());
  for (TermId m : vsg.measures) w.U32(m);
  w.U64(vsg.observation_attrs.size());
  for (TermId a : vsg.observation_attrs) w.U32(a);
  *out = w.Take();
  return util::Status::OK();
}

util::Status EncodeDeltaChain(const rdf::EpochChain& chain, std::string* out) {
  ByteWriter w;
  w.Reserve(8 + (chain.delta_adds + chain.delta_dels) * 3 *
                    sizeof(EncodedTriple));
  w.U64(chain.layers.size());
  for (const std::shared_ptr<const rdf::DeltaLayer>& layer : chain.layers) {
    w.U64(layer->batch_id);
    w.U64(layer->add_count());
    w.U64(layer->del_count());
    const std::vector<EncodedTriple>* arrays[6] = {
        &layer->add_spo, &layer->add_pos, &layer->add_osp,
        &layer->del_spo, &layer->del_pos, &layer->del_osp};
    for (const std::vector<EncodedTriple>* a : arrays) {
      w.Bytes(a->data(), a->size() * sizeof(EncodedTriple));
    }
  }
  *out = w.Take();
  return util::Status::OK();
}

// --- section payload decoders ------------------------------------------------

util::Status CheckTermId(uint32_t id, uint64_t term_count, const char* what) {
  if (id == rdf::kInvalidTermId || id > term_count) {
    return util::Status::ParseError(
        std::string("snapshot ") + what + " references term id " +
        std::to_string(id) + " outside the dictionary (" +
        std::to_string(term_count) + " terms)");
  }
  return util::Status::OK();
}

/// Reads a u64-counted list of term ids, bounds-checking the count against
/// the remaining payload before reserving and every id against the
/// dictionary size.
util::Status ReadIdList(ByteReader* r, uint64_t term_count, const char* what,
                        std::vector<TermId>* out) {
  uint64_t n = 0;
  RE2X_RETURN_IF_ERROR(r->U64(&n));
  if (n * sizeof(TermId) > r->remaining()) {
    return util::Status::ParseError(
        std::string("snapshot ") + what + " id list overruns payload");
  }
  // Bulk-copy the array (bounds were checked above), then range-check with
  // plain compares; a Status is only built on the failure path. Id lists
  // appear once per posting / member list, so this loop is hot.
  out->resize(n);
  if (n > 0) {
    std::memcpy(out->data(), r->cursor(), n * sizeof(TermId));
    RE2X_RETURN_IF_ERROR(r->Skip(n * sizeof(TermId)));
  }
  const uint32_t max_id =
      static_cast<uint32_t>(std::min<uint64_t>(term_count, UINT32_MAX));
  for (uint32_t id : *out) {
    if (id - 1 >= max_id) [[unlikely]] {
      return CheckTermId(id, term_count, what);
    }
  }
  return util::Status::OK();
}

util::Status DecodeDictionary(const std::byte* data, size_t bytes,
                              uint64_t term_count,
                              const util::ExecGuard* guard,
                              rdf::Dictionary* dict) {
  ByteReader r(data, bytes);
  uint64_t count = 0;
  RE2X_RETURN_IF_ERROR(r.U64(&count));
  if (count != term_count) {
    return util::Status::ParseError(
        "snapshot dictionary declares " + std::to_string(count) +
        " terms but the header says " + std::to_string(term_count));
  }
  // Each term occupies at least 6 bytes (kind + type + length), so a
  // crafted count cannot force an oversized reservation.
  if (count * 6 > r.remaining()) {
    return util::Status::ParseError("snapshot dictionary overruns payload");
  }
  dict->Reserve(count);
  std::string value;
  for (uint64_t i = 0; i < count; ++i) {
    if ((i + 1) % kGuardStride == 0) RE2X_RETURN_IF_ERROR(GuardCheck(guard));
    uint8_t kind = 0, lt = 0;
    RE2X_RETURN_IF_ERROR(r.U8(&kind));
    RE2X_RETURN_IF_ERROR(r.U8(&lt));
    RE2X_RETURN_IF_ERROR(r.Str(&value));
    if (kind > static_cast<uint8_t>(rdf::TermKind::kBlankNode) ||
        lt > static_cast<uint8_t>(rdf::LiteralType::kOther)) {
      return util::Status::ParseError(
          "snapshot dictionary term " + std::to_string(i + 1) +
          " has invalid kind/type tags");
    }
    rdf::Term term(static_cast<rdf::TermKind>(kind), std::move(value),
                   static_cast<rdf::LiteralType>(lt));
    TermId id = dict->Intern(std::move(term));
    if (id != static_cast<TermId>(i + 1)) {
      return util::Status::ParseError(
          "snapshot dictionary contains a duplicate term at id " +
          std::to_string(i + 1));
    }
  }
  if (r.remaining() != 0) {
    return util::Status::ParseError(
        "snapshot dictionary has trailing garbage");
  }
  return util::Status::OK();
}

util::Status DecodeStats(const std::byte* data, size_t bytes,
                         uint64_t term_count,
                         std::unordered_map<TermId, rdf::PredicateStats>* out) {
  ByteReader r(data, bytes);
  uint64_t count = 0;
  RE2X_RETURN_IF_ERROR(r.U64(&count));
  if (count * 28 > r.remaining()) {
    return util::Status::ParseError(
        "snapshot predicate stats overrun payload");
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t p = 0;
    rdf::PredicateStats st;
    RE2X_RETURN_IF_ERROR(r.U32(&p));
    RE2X_RETURN_IF_ERROR(r.U64(&st.triple_count));
    RE2X_RETURN_IF_ERROR(r.U64(&st.distinct_subjects));
    RE2X_RETURN_IF_ERROR(r.U64(&st.distinct_objects));
    RE2X_RETURN_IF_ERROR(CheckTermId(p, term_count, "predicate stats"));
    if (!out->emplace(p, st).second) {
      return util::Status::ParseError(
          "snapshot predicate stats repeat predicate " + std::to_string(p));
    }
  }
  if (r.remaining() != 0) {
    return util::Status::ParseError(
        "snapshot predicate stats have trailing garbage");
  }
  return util::Status::OK();
}

util::Status DecodePostingsMap(
    ByteReader* r, uint64_t term_count, const char* what,
    const util::ExecGuard* guard,
    std::unordered_map<std::string, std::vector<TermId>>* out) {
  uint64_t entries = 0;
  RE2X_RETURN_IF_ERROR(r->U64(&entries));
  // Each entry needs at least 12 bytes (key length + list length).
  if (entries * 12 > r->remaining()) {
    return util::Status::ParseError(std::string("snapshot ") + what +
                                    " overruns payload");
  }
  out->clear();
  out->reserve(entries);
  std::string key;
  for (uint64_t i = 0; i < entries; ++i) {
    if ((i + 1) % kGuardStride == 0) RE2X_RETURN_IF_ERROR(GuardCheck(guard));
    RE2X_RETURN_IF_ERROR(r->Str(&key));
    std::vector<TermId> ids;
    RE2X_RETURN_IF_ERROR(ReadIdList(r, term_count, what, &ids));
    // Posting lists must be strictly increasing: KeywordMatch intersects
    // them with std::set_intersection, which requires sorted input.
    for (size_t j = 1; j < ids.size(); ++j) {
      if (ids[j] <= ids[j - 1]) [[unlikely]] {
        return util::Status::ParseError(std::string("snapshot ") + what +
                                        " posting list for \"" + key +
                                        "\" is not sorted/unique");
      }
    }
    if (!out->emplace(std::move(key), std::move(ids)).second) {
      return util::Status::ParseError(std::string("snapshot ") + what +
                                      " repeats a key");
    }
  }
  return util::Status::OK();
}

util::Status DecodeTextIndex(const std::byte* data, size_t bytes,
                             uint64_t term_count,
                             const util::ExecGuard* guard,
                             std::unique_ptr<rdf::TextIndex>* out) {
  ByteReader r(data, bytes);
  uint64_t indexed = 0;
  RE2X_RETURN_IF_ERROR(r.U64(&indexed));
  std::unordered_map<std::string, std::vector<TermId>> exact, postings;
  RE2X_RETURN_IF_ERROR(
      DecodePostingsMap(&r, term_count, "text exact index", guard, &exact));
  RE2X_RETURN_IF_ERROR(
      DecodePostingsMap(&r, term_count, "text postings", guard, &postings));
  if (r.remaining() != 0) {
    return util::Status::ParseError("snapshot text index has trailing garbage");
  }
  *out = rdf::TextIndex::FromParts(std::move(postings), std::move(exact),
                                   static_cast<size_t>(indexed));
  return util::Status::OK();
}

util::Status DecodeVsg(const std::byte* data, size_t bytes,
                       uint64_t term_count, VsgImage* out) {
  ByteReader r(data, bytes);
  uint64_t node_count = 0;
  RE2X_RETURN_IF_ERROR(r.U64(&node_count));
  if (node_count * 22 > r.remaining()) {
    return util::Status::ParseError("snapshot graph nodes overrun payload");
  }
  out->nodes.clear();
  out->nodes.reserve(node_count);
  for (uint64_t i = 0; i < node_count; ++i) {
    core::VsgNode n;
    uint8_t is_root = 0;
    RE2X_RETURN_IF_ERROR(r.I32(&n.id));
    RE2X_RETURN_IF_ERROR(r.U8(&is_root));
    n.is_root = is_root != 0;
    RE2X_RETURN_IF_ERROR(r.Str(&n.name));
    RE2X_RETURN_IF_ERROR(
        ReadIdList(&r, term_count, "graph node members", &n.members));
    RE2X_RETURN_IF_ERROR(ReadIdList(&r, term_count, "graph node attributes",
                                    &n.attribute_predicates));
    out->nodes.push_back(std::move(n));
  }
  uint64_t edge_count = 0;
  RE2X_RETURN_IF_ERROR(r.U64(&edge_count));
  if (edge_count * 12 > r.remaining()) {
    return util::Status::ParseError("snapshot graph edges overrun payload");
  }
  out->edges.clear();
  out->edges.reserve(edge_count);
  for (uint64_t i = 0; i < edge_count; ++i) {
    core::VsgEdge e;
    uint32_t pred = 0;
    RE2X_RETURN_IF_ERROR(r.I32(&e.from));
    RE2X_RETURN_IF_ERROR(r.I32(&e.to));
    RE2X_RETURN_IF_ERROR(r.U32(&pred));
    RE2X_RETURN_IF_ERROR(CheckTermId(pred, term_count, "graph edge"));
    e.predicate = pred;
    out->edges.push_back(e);
  }
  RE2X_RETURN_IF_ERROR(
      ReadIdList(&r, term_count, "graph measures", &out->measures));
  RE2X_RETURN_IF_ERROR(ReadIdList(&r, term_count, "graph observation attrs",
                                  &out->observation_attrs));
  if (r.remaining() != 0) {
    return util::Status::ParseError("snapshot graph has trailing garbage");
  }
  return util::Status::OK();
}

// --- triple-index validation -------------------------------------------------

/// Validates one permutation array: every id within the dictionary and the
/// array sorted by `less` (binary search on an adopted image must behave
/// exactly like on a freshly frozen store). Chunked so a pool can fan the
/// scan across cores; the per-chunk boundary element overlaps its
/// predecessor so sortedness across chunk seams is covered.
template <typename Less>
util::Status ValidateTriples(std::span<const EncodedTriple> triples,
                             uint64_t term_count, Less less,
                             const char* what, util::ThreadPool* pool,
                             const util::ExecGuard* guard) {
  RE2X_RETURN_IF_ERROR(GuardCheck(guard));
  obs::Span span("snapshot.load.validate");
  span.SetAttr("index", what);
  constexpr size_t kChunk = 1 << 20;
  const size_t n = triples.size();
  const size_t chunks = (n + kChunk - 1) / kChunk;
  std::vector<util::Status> statuses(chunks);
  // The id bound fits u32 (term ids are u32), so the hot loop compares
  // 32-bit values and only the failure path builds a Status.
  const uint32_t max_id =
      static_cast<uint32_t>(std::min<uint64_t>(term_count, UINT32_MAX));
  RunParallel(pool, chunks, [&](size_t c) {
    const size_t begin = c * kChunk;
    const size_t end = std::min(n, begin + kChunk);
    for (size_t i = begin; i < end; ++i) {
      const EncodedTriple& t = triples[i];
      if (t.s - 1 >= max_id || t.p - 1 >= max_id || t.o - 1 >= max_id)
          [[unlikely]] {
        uint32_t bad = t.s - 1 >= max_id ? t.s : (t.p - 1 >= max_id ? t.p : t.o);
        statuses[c] = CheckTermId(bad, term_count, what);
        return;
      }
      if (i > 0 && !less(triples[i - 1], t)) [[unlikely]] {
        statuses[c] = util::Status::ParseError(
            std::string("snapshot ") + what +
            " index is not strictly sorted at position " + std::to_string(i));
        return;
      }
    }
  });
  for (const util::Status& st : statuses) RE2X_RETURN_IF_ERROR(st);
  return util::Status::OK();
}

// --- delta chain section (version >= 3) --------------------------------------

/// Decodes and validates the sealed delta layers of a version 3 image.
/// Structural validation matches the base trio's: every array strictly
/// sorted in its permutation order with every id inside the dictionary.
/// (The set-semantics invariants — adds not yet visible, deletes visible —
/// relate layers to the base and to each other; they are the writer's
/// responsibility and are covered by the section checksums, exactly like
/// the base trio's agreement with the stats section.)
util::Result<std::vector<std::shared_ptr<const rdf::DeltaLayer>>>
DecodeDeltaChain(const std::byte* data, size_t bytes, uint64_t term_count,
                 util::ThreadPool* pool, const util::ExecGuard* guard) {
  ByteReader r(data, bytes);
  uint64_t layer_count = 0;
  RE2X_RETURN_IF_ERROR(r.U64(&layer_count));
  if (layer_count == 0) {
    return util::Status::ParseError(
        "snapshot delta_chain declares zero layers; version 3 images are "
        "only written for non-empty chains");
  }
  // Each layer occupies at least its 24-byte fixed part.
  if (layer_count * 24 > r.remaining()) {
    return util::Status::ParseError("snapshot delta_chain overruns payload");
  }
  std::vector<std::shared_ptr<const rdf::DeltaLayer>> layers;
  layers.reserve(layer_count);
  for (uint64_t i = 0; i < layer_count; ++i) {
    auto layer = std::make_shared<rdf::DeltaLayer>();
    uint64_t add_count = 0, del_count = 0;
    RE2X_RETURN_IF_ERROR(r.U64(&layer->batch_id));
    RE2X_RETURN_IF_ERROR(r.U64(&add_count));
    RE2X_RETURN_IF_ERROR(r.U64(&del_count));
    if (add_count + del_count == 0) {
      return util::Status::ParseError(
          "snapshot delta_chain layer " + std::to_string(i) +
          " is empty; empty batches are never published");
    }
    if ((add_count + del_count) * 3 * sizeof(EncodedTriple) > r.remaining()) {
      return util::Status::ParseError("snapshot delta_chain layer " +
                                      std::to_string(i) +
                                      " overruns payload");
    }
    struct Part {
      std::vector<EncodedTriple>* arr;
      uint64_t count;
      const char* what;
    };
    const Part parts[6] = {
        {&layer->add_spo, add_count, "delta add_spo"},
        {&layer->add_pos, add_count, "delta add_pos"},
        {&layer->add_osp, add_count, "delta add_osp"},
        {&layer->del_spo, del_count, "delta del_spo"},
        {&layer->del_pos, del_count, "delta del_pos"},
        {&layer->del_osp, del_count, "delta del_osp"},
    };
    for (const Part& p : parts) {
      p.arr->resize(p.count);
      if (p.count > 0) {
        std::memcpy(p.arr->data(), r.cursor(),
                    p.count * sizeof(EncodedTriple));
        RE2X_RETURN_IF_ERROR(r.Skip(p.count * sizeof(EncodedTriple)));
      }
    }
    RE2X_RETURN_IF_ERROR(ValidateTriples(std::span<const EncodedTriple>(
                                             layer->add_spo),
                                         term_count, SpoLess, "delta add_spo",
                                         pool, guard));
    RE2X_RETURN_IF_ERROR(ValidateTriples(std::span<const EncodedTriple>(
                                             layer->add_pos),
                                         term_count, PosLess, "delta add_pos",
                                         pool, guard));
    RE2X_RETURN_IF_ERROR(ValidateTriples(std::span<const EncodedTriple>(
                                             layer->add_osp),
                                         term_count, OspLess, "delta add_osp",
                                         pool, guard));
    RE2X_RETURN_IF_ERROR(ValidateTriples(std::span<const EncodedTriple>(
                                             layer->del_spo),
                                         term_count, SpoLess, "delta del_spo",
                                         pool, guard));
    RE2X_RETURN_IF_ERROR(ValidateTriples(std::span<const EncodedTriple>(
                                             layer->del_pos),
                                         term_count, PosLess, "delta del_pos",
                                         pool, guard));
    RE2X_RETURN_IF_ERROR(ValidateTriples(std::span<const EncodedTriple>(
                                             layer->del_osp),
                                         term_count, OspLess, "delta del_osp",
                                         pool, guard));
    layer->RebuildPredicateDelta();
    layers.push_back(std::move(layer));
  }
  if (r.remaining() != 0) {
    return util::Status::ParseError("snapshot delta_chain has trailing garbage");
  }
  return layers;
}

// --- compressed index sections (version >= 2) --------------------------------

static_assert(std::is_trivially_copyable_v<rdf::BlockMeta>,
              "BlockMeta skip tables are serialized as raw memory");

// Fixed per-section header preceding the skip table:
// triple_count(8) block_count(8) payload_bytes(8) block_size(4) reserved(4).
// 32 bytes so the BlockMeta array lands 8-aligned after the 64-aligned
// section start.
constexpr uint64_t kCompressedSectionHeaderBytes = 32;

util::Status EncodeCompressedPerm(const rdf::CompressedPermutation& cp,
                                  std::string* out) {
  ByteWriter w;
  w.Reserve(kCompressedSectionHeaderBytes + cp.byte_size());
  w.U64(cp.size());
  w.U64(cp.block_count());
  w.U64(cp.payload().size());
  w.U32(rdf::kIndexBlockSize);
  w.U32(0);  // reserved
  w.Bytes(cp.skip().data(), cp.skip().size() * sizeof(rdf::BlockMeta));
  w.Bytes(cp.payload().data(), cp.payload().size());
  *out = w.Take();
  return util::Status::OK();
}

/// Skip-table and payload spans of one compressed section, aliasing the
/// image. Structural bounds only; per-block content is validated by
/// ValidateCompressedPerm before any adoption.
struct CompressedSectionView {
  std::span<const rdf::BlockMeta> skip;
  std::span<const uint8_t> payload;
  uint64_t triple_count = 0;
};

util::Result<CompressedSectionView> CompressedView(const std::byte* base,
                                                   const SectionInfo& s,
                                                   uint64_t expect_triples) {
  auto bad = [&](const std::string& why) {
    return util::Status::ParseError(std::string("snapshot section ") +
                                    SectionName(s.id) + " " + why);
  };
  if (s.bytes < kCompressedSectionHeaderBytes) {
    return bad("is smaller than its fixed header");
  }
  ByteReader r(base + s.offset, s.bytes);
  CompressedSectionView v;
  uint64_t blocks = 0, payload_bytes = 0;
  uint32_t block_size = 0, reserved = 0;
  RE2X_RETURN_IF_ERROR(r.U64(&v.triple_count));
  RE2X_RETURN_IF_ERROR(r.U64(&blocks));
  RE2X_RETURN_IF_ERROR(r.U64(&payload_bytes));
  RE2X_RETURN_IF_ERROR(r.U32(&block_size));
  RE2X_RETURN_IF_ERROR(r.U32(&reserved));
  (void)reserved;  // ignored for forward compatibility
  if (v.triple_count != expect_triples) {
    return bad("holds " + std::to_string(v.triple_count) +
               " triples, header declares " + std::to_string(expect_triples));
  }
  if (block_size != rdf::kIndexBlockSize) {
    return bad("uses block size " + std::to_string(block_size) +
               ", this build reads " + std::to_string(rdf::kIndexBlockSize));
  }
  if (blocks != rdf::CompressedPermutation::BlockCountFor(v.triple_count)) {
    return bad("declares " + std::to_string(blocks) + " blocks for " +
               std::to_string(v.triple_count) + " triples");
  }
  // Overflow-safe: bound the count by the bytes actually present before
  // computing the skip-table size.
  const uint64_t body = s.bytes - kCompressedSectionHeaderBytes;
  if (blocks > body / sizeof(rdf::BlockMeta) ||
      body != blocks * sizeof(rdf::BlockMeta) + payload_bytes) {
    return bad("skip table / payload sizes disagree with the section size");
  }
  const std::byte* skip_base = base + s.offset + kCompressedSectionHeaderBytes;
  v.skip = std::span<const rdf::BlockMeta>(
      reinterpret_cast<const rdf::BlockMeta*>(skip_base), blocks);
  v.payload = std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(skip_base) +
          blocks * sizeof(rdf::BlockMeta),
      payload_bytes);
  return v;
}

/// Full content validation of one compressed permutation: every block
/// decodes cleanly (checksum, strict in-block ordering, exact byte
/// consumption), every term id is within the dictionary, block byte
/// offsets tile the payload, and block boundaries keep the permutation's
/// strict global order. On success `*out` borrows the image's spans.
util::Status ValidateCompressedPerm(const CompressedSectionView& view,
                                    rdf::Perm perm, uint64_t term_count,
                                    const char* what, util::ThreadPool* pool,
                                    const util::ExecGuard* guard,
                                    rdf::CompressedPermutation* out) {
  RE2X_RETURN_IF_ERROR(GuardCheck(guard));
  obs::Span span("snapshot.load.validate");
  span.SetAttr("index", what);
  rdf::CompressedPermutation cp = rdf::CompressedPermutation::FromParts(
      view.skip, view.payload, view.triple_count, perm);
  const uint64_t blocks = cp.block_count();
  // Block byte offsets must tile the payload in order; BlockBytes slices
  // are derived from consecutive offsets, so this also bounds every
  // decode below to real payload bytes.
  uint64_t prev_off = 0;
  for (uint64_t b = 0; b < blocks; ++b) {
    const uint64_t off = view.skip[b].byte_offset;
    if ((b == 0 && off != 0) || (b > 0 && off < prev_off) ||
        off > view.payload.size()) {
      return util::Status::ParseError(
          std::string("snapshot ") + what +
          " skip table has out-of-order byte offsets at block " +
          std::to_string(b));
    }
    prev_off = off;
  }
  // Per-block validation fans out in groups; each group decodes its
  // blocks and records the last triple so a serial pass can check strict
  // ordering across block seams afterwards.
  constexpr uint64_t kBlocksPerTask = 256;
  const uint64_t tasks = (blocks + kBlocksPerTask - 1) / kBlocksPerTask;
  std::vector<util::Status> statuses(tasks);
  std::vector<EncodedTriple> last(blocks);
  const uint32_t max_id =
      static_cast<uint32_t>(std::min<uint64_t>(term_count, UINT32_MAX));
  RunParallel(pool, tasks, [&](size_t task) {
    std::vector<EncodedTriple> buf;
    const uint64_t begin = task * kBlocksPerTask;
    const uint64_t end = std::min(blocks, begin + kBlocksPerTask);
    for (uint64_t b = begin; b < end; ++b) {
      util::Status st = cp.DecodeBlockChecked(b, &buf);
      if (!st.ok()) {
        statuses[task] = util::Status::ParseError(
            std::string("snapshot ") + what + ": " + st.message());
        return;
      }
      for (const EncodedTriple& t : buf) {
        if (t.s - 1 >= max_id || t.p - 1 >= max_id || t.o - 1 >= max_id)
            [[unlikely]] {
          uint32_t bad =
              t.s - 1 >= max_id ? t.s : (t.p - 1 >= max_id ? t.p : t.o);
          statuses[task] = CheckTermId(bad, term_count, what);
          return;
        }
      }
      last[b] = buf.back();
    }
  });
  for (const util::Status& st : statuses) RE2X_RETURN_IF_ERROR(st);
  for (uint64_t b = 1; b < blocks; ++b) {
    if (!rdf::PermLess(perm, last[b - 1], cp.BlockFirstTriple(b)))
        [[unlikely]] {
      return util::Status::ParseError(
          std::string("snapshot ") + what +
          " index is not strictly sorted across the boundary of block " +
          std::to_string(b));
    }
  }
  if (out != nullptr) *out = std::move(cp);
  return util::Status::OK();
}

// --- header ------------------------------------------------------------------

std::string EncodeHeader(const SnapshotInfo& info) {
  ByteWriter w;
  w.Bytes(kSnapshotMagic, sizeof(kSnapshotMagic));
  w.U32(info.version);
  w.U32(static_cast<uint32_t>(info.sections.size()));
  w.U64(info.file_bytes);
  w.U64(info.freeze_epoch);
  w.U64(info.triple_count);
  w.U64(info.term_count);
  uint64_t flags = (info.has_text_index ? kFlagHasTextIndex : 0) |
                   (info.has_vsg ? kFlagHasVsg : 0);
  w.U64(flags);
  for (const SectionInfo& s : info.sections) {
    w.U32(static_cast<uint32_t>(s.id));
    w.U32(0);  // padding / reserved
    w.U64(s.offset);
    w.U64(s.bytes);
    w.U64(s.checksum);
  }
  w.U64(Xxh64(w.data().data(), w.size()));
  return w.Take();
}

/// Parses + validates the header and section table. `header_region` must
/// hold at least the full header (callers over-read); `file_bytes` is the
/// actual on-disk size, compared against the declared size to detect
/// truncation.
util::Result<SnapshotInfo> ParseHeader(const std::byte* data,
                                       size_t header_region,
                                       uint64_t file_bytes) {
  if (header_region < kFixedHeaderBytes) {
    return util::Status::ParseError(
        "truncated snapshot: " + std::to_string(header_region) +
        " bytes is smaller than the fixed header");
  }
  ByteReader r(data, header_region);
  if (std::memcmp(data, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return util::Status::ParseError(
        "bad magic: not a re2xolap snapshot image");
  }
  RE2X_RETURN_IF_ERROR(r.Skip(sizeof(kSnapshotMagic)));
  SnapshotInfo info;
  uint32_t section_count = 0;
  uint64_t flags = 0;
  RE2X_RETURN_IF_ERROR(r.U32(&info.version));
  RE2X_RETURN_IF_ERROR(r.U32(&section_count));
  RE2X_RETURN_IF_ERROR(r.U64(&info.file_bytes));
  RE2X_RETURN_IF_ERROR(r.U64(&info.freeze_epoch));
  RE2X_RETURN_IF_ERROR(r.U64(&info.triple_count));
  RE2X_RETURN_IF_ERROR(r.U64(&info.term_count));
  RE2X_RETURN_IF_ERROR(r.U64(&flags));
  if (info.version < kSnapshotVersion || info.version > kSnapshotVersionLive) {
    return util::Status::InvalidArgument(
        "unsupported snapshot version " + std::to_string(info.version) +
        " (this build reads versions " + std::to_string(kSnapshotVersion) +
        "-" + std::to_string(kSnapshotVersionLive) + ")");
  }
  if (section_count == 0 || section_count > kMaxSections) {
    return util::Status::ParseError("snapshot section count " +
                                    std::to_string(section_count) +
                                    " is implausible");
  }
  const uint64_t header_bytes = HeaderBytes(section_count);
  if (header_region < header_bytes) {
    return util::Status::ParseError(
        "truncated snapshot: header needs " + std::to_string(header_bytes) +
        " bytes, file provides " + std::to_string(header_region));
  }
  if (info.file_bytes != file_bytes) {
    return util::Status::ParseError(
        "truncated snapshot: header declares " +
        std::to_string(info.file_bytes) + " bytes, file has " +
        std::to_string(file_bytes));
  }
  // Header checksum covers everything before the trailing u64, so a bit
  // flip anywhere in the header or section table is caught here.
  uint64_t declared = 0;
  std::memcpy(&declared, data + header_bytes - 8, sizeof(declared));
  uint64_t actual = Xxh64(data, header_bytes - 8);
  if (declared != actual) {
    obs::MetricsRegistry::Global()
        .GetCounter("storage.checksum_failures")
        .Inc();
    return util::Status::ParseError("snapshot header checksum mismatch");
  }
  info.has_text_index = (flags & kFlagHasTextIndex) != 0;
  info.has_vsg = (flags & kFlagHasVsg) != 0;
  info.sections.reserve(section_count);
  for (uint32_t i = 0; i < section_count; ++i) {
    uint32_t id = 0, pad = 0;
    SectionInfo s;
    RE2X_RETURN_IF_ERROR(r.U32(&id));
    RE2X_RETURN_IF_ERROR(r.U32(&pad));
    RE2X_RETURN_IF_ERROR(r.U64(&s.offset));
    RE2X_RETURN_IF_ERROR(r.U64(&s.bytes));
    RE2X_RETURN_IF_ERROR(r.U64(&s.checksum));
    // Each version's valid id range stops at the last section that
    // version can carry (v1 predates the compressed block sections, v2
    // the delta chain); an id past the version's range means corruption,
    // not a feature gap.
    const uint32_t max_id =
        info.version >= kSnapshotVersionLive
            ? static_cast<uint32_t>(SectionId::kDeltaChain)
        : info.version >= kSnapshotVersionCompressed
            ? static_cast<uint32_t>(SectionId::kOspBlocks)
            : static_cast<uint32_t>(SectionId::kVsg);
    if (id < static_cast<uint32_t>(SectionId::kDictionary) || id > max_id) {
      return util::Status::ParseError("snapshot contains unknown section id " +
                                      std::to_string(id));
    }
    s.id = static_cast<SectionId>(id);
    if (s.offset % kSectionAlignment != 0 || s.offset < header_bytes ||
        s.bytes > info.file_bytes || s.offset > info.file_bytes - s.bytes) {
      return util::Status::ParseError(
          std::string("snapshot section ") + SectionName(s.id) +
          " lies outside the file or is misaligned");
    }
    for (const SectionInfo& prev : info.sections) {
      if (prev.id == s.id) {
        return util::Status::ParseError(std::string("snapshot repeats section ") +
                                        SectionName(s.id));
      }
    }
    info.sections.push_back(s);
  }
  return info;
}

const SectionInfo* FindSection(const SnapshotInfo& info, SectionId id) {
  for (const SectionInfo& s : info.sections) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

util::Status VerifySectionChecksums(const std::byte* base,
                                    const SnapshotInfo& info,
                                    util::ThreadPool* pool,
                                    const util::ExecGuard* guard) {
  RE2X_RETURN_IF_ERROR(GuardCheck(guard));
  obs::Span span("snapshot.verify_checksums");
  std::vector<util::Status> statuses(info.sections.size());
  RunParallel(pool, info.sections.size(), [&](size_t i) {
    const SectionInfo& s = info.sections[i];
    if (Xxh64(base + s.offset, s.bytes) != s.checksum) {
      obs::MetricsRegistry::Global()
          .GetCounter("storage.checksum_failures")
          .Inc();
      statuses[i] = util::Status::ParseError(
          std::string("snapshot section ") + SectionName(s.id) +
          " checksum mismatch (corrupted image)");
    }
  });
  for (const util::Status& st : statuses) RE2X_RETURN_IF_ERROR(st);
  return util::Status::OK();
}

}  // namespace

const char* SectionName(SectionId id) {
  switch (id) {
    case SectionId::kDictionary: return "dictionary";
    case SectionId::kSpo: return "spo";
    case SectionId::kPos: return "pos";
    case SectionId::kOsp: return "osp";
    case SectionId::kPredicateStats: return "predicate_stats";
    case SectionId::kTextIndex: return "text_index";
    case SectionId::kVsg: return "vsg";
    case SectionId::kSpoBlocks: return "spo_blocks";
    case SectionId::kPosBlocks: return "pos_blocks";
    case SectionId::kOspBlocks: return "osp_blocks";
    case SectionId::kDeltaChain: return "delta_chain";
  }
  return "unknown";
}

// --- save --------------------------------------------------------------------

namespace {

util::Status SaveSnapshotImpl(const std::string& path,
                              const rdf::TripleStore& store,
                              const rdf::TextIndex* text, const VsgImage* vsg,
                              const SnapshotWriteOptions& options) {
  obs::Span span("snapshot.save");
  RE2X_FAILPOINT("snapshot.save");
  if (!store.frozen()) {
    return util::Status::InvalidArgument(
        "snapshot requires a frozen store (call Freeze() first)");
  }
  // Pin the epoch chain so every store accessor below answers from one
  // epoch (no-op on non-live stores). Live saves additionally require
  // quiesced ingestion — see the format notes in snapshot.h.
  rdf::TripleStore::ReadPin pin(store);
  std::shared_ptr<const rdf::EpochChain> chain = store.live_chain();
  const rdf::LiveBase* live_base = chain ? chain->base.get() : nullptr;
  const bool live_layers = chain != nullptr && !chain->layers.empty();
  if (store.size() == 0) {
    return util::Status::InvalidArgument(
        "refusing to snapshot an empty store: nothing to persist");
  }
  // The index trio always carries the chain's base (the whole store on
  // non-live stores); visible = base + delta adds - delta dels.
  const uint64_t base_triples =
      chain == nullptr
          ? store.size()
          : store.size() + chain->delta_dels - chain->delta_adds;
  if (base_triples == 0) {
    return util::Status::InvalidArgument(
        "refusing to snapshot a live store whose chain base is empty; "
        "compact first so the image carries a non-empty index trio");
  }
  RE2X_RETURN_IF_ERROR(GuardCheck(options.guard));
  util::WallTimer timer;

  struct Pending {
    SectionId id;
    const void* data = nullptr;  // raw span (triple indexes) or buf below
    size_t bytes = 0;
    std::string buf;
    uint64_t checksum = 0;
    util::Status status;
  };
  std::vector<Pending> sections;
  sections.reserve(8);
  auto add = [&](SectionId id, const void* data = nullptr,
                 size_t bytes = 0) {
    Pending p;
    p.id = id;
    p.data = data;
    p.bytes = bytes;
    sections.push_back(std::move(p));
  };
  // A compacted chain base lives in the chain's LiveBase vectors (always
  // raw), not in the store's own arrays — those still hold the stale
  // pre-ingestion data.
  const bool compressed = live_base == nullptr && store.compressed_index();
  add(SectionId::kDictionary);
  if (live_base != nullptr) {
    add(SectionId::kSpo, live_base->spo.data(),
        live_base->spo.size() * sizeof(EncodedTriple));
    add(SectionId::kPos, live_base->pos.data(),
        live_base->pos.size() * sizeof(EncodedTriple));
    add(SectionId::kOsp, live_base->osp.data(),
        live_base->osp.size() * sizeof(EncodedTriple));
  } else if (compressed) {
    add(SectionId::kSpoBlocks);
    add(SectionId::kPosBlocks);
    add(SectionId::kOspBlocks);
  } else {
    add(SectionId::kSpo, store.spo_span().data(),
        store.spo_span().size_bytes());
    add(SectionId::kPos, store.pos_span().data(),
        store.pos_span().size_bytes());
    add(SectionId::kOsp, store.osp_span().data(),
        store.osp_span().size_bytes());
  }
  add(SectionId::kPredicateStats);
  if (text != nullptr) add(SectionId::kTextIndex);
  if (vsg != nullptr) add(SectionId::kVsg);
  if (live_layers) add(SectionId::kDeltaChain);

  static obs::Histogram& encode_hist =
      obs::MetricsRegistry::Global().GetHistogram(
          "storage.section.encode.millis");
  RunParallel(options.pool, sections.size(), [&](size_t i) {
    Pending& s = sections[i];
    obs::Span sec_span("snapshot.save.section");
    sec_span.SetAttr("section", SectionName(s.id));
    util::WallTimer sec_timer;
    switch (s.id) {
      case SectionId::kDictionary:
        s.status =
            EncodeDictionary(store.dictionary(), options.guard, &s.buf);
        break;
      case SectionId::kPredicateStats:
        // The stats section matches the index trio, i.e. the chain base:
        // the loader re-applies the delta layers' stat adjustments when it
        // republishes the chain (TripleStore::RestoreChain).
        s.status = EncodeStats(live_base != nullptr
                                   ? live_base->stats
                                   : store.all_predicate_stats(),
                               &s.buf);
        break;
      case SectionId::kTextIndex:
        s.status = EncodeTextIndex(*text, options.guard, &s.buf);
        break;
      case SectionId::kVsg:
        s.status = EncodeVsg(*vsg, &s.buf);
        break;
      case SectionId::kSpoBlocks:
        s.status = EncodeCompressedPerm(*store.spo_blocks(), &s.buf);
        break;
      case SectionId::kPosBlocks:
        s.status = EncodeCompressedPerm(*store.pos_blocks(), &s.buf);
        break;
      case SectionId::kOspBlocks:
        s.status = EncodeCompressedPerm(*store.osp_blocks(), &s.buf);
        break;
      case SectionId::kDeltaChain:
        s.status = EncodeDeltaChain(*chain, &s.buf);
        break;
      default:
        break;  // raw triple sections: data/bytes already set
    }
    if (s.status.ok() && s.data == nullptr) {
      s.data = s.buf.data();
      s.bytes = s.buf.size();
    }
    if (s.status.ok()) s.checksum = Xxh64(s.data, s.bytes);
    encode_hist.Observe(sec_timer.ElapsedMillis());
    sec_span.SetAttr("bytes", static_cast<uint64_t>(s.bytes));
  });
  for (const Pending& s : sections) RE2X_RETURN_IF_ERROR(s.status);
  RE2X_RETURN_IF_ERROR(GuardCheck(options.guard));

  SnapshotInfo info;
  info.version = live_layers    ? kSnapshotVersionLive
                 : compressed   ? kSnapshotVersionCompressed
                                : kSnapshotVersion;
  // Live stores answer freeze_epoch() with the pinned chain's epoch, so a
  // version 3 image restores at exactly the epoch it was saved at.
  info.freeze_epoch = store.freeze_epoch();
  info.triple_count = base_triples;
  info.term_count = store.dictionary().size();
  info.has_text_index = text != nullptr;
  info.has_vsg = vsg != nullptr;
  uint64_t offset = AlignUp(HeaderBytes(sections.size()));
  for (const Pending& s : sections) {
    info.sections.push_back({s.id, offset, s.bytes, s.checksum});
    offset = AlignUp(offset + s.bytes);
  }
  // The file ends right after the last payload (no trailing pad).
  info.file_bytes = info.sections.back().offset + info.sections.back().bytes;

  std::string header = EncodeHeader(info);
  static const char kZeros[kSectionAlignment] = {};
  std::vector<std::pair<const void*, size_t>> blobs;
  blobs.reserve(2 * sections.size() + 1);
  blobs.emplace_back(header.data(), header.size());
  uint64_t written = header.size();
  for (size_t i = 0; i < sections.size(); ++i) {
    uint64_t pad = info.sections[i].offset - written;
    if (pad > 0) blobs.emplace_back(kZeros, pad);
    blobs.emplace_back(sections[i].data, sections[i].bytes);
    written = info.sections[i].offset + sections[i].bytes;
  }
  RE2X_RETURN_IF_ERROR(WriteFileAtomic(path, blobs));

  obs::MetricsRegistry::Global().GetCounter("storage.saves").Inc();
  obs::MetricsRegistry::Global()
      .GetCounter("storage.save.bytes")
      .Inc(info.file_bytes);
  obs::MetricsRegistry::Global()
      .GetHistogram("storage.save.millis")
      .Observe(timer.ElapsedMillis());
  span.SetAttr("bytes", info.file_bytes);
  span.SetAttr("sections", static_cast<uint64_t>(sections.size()));
  return util::Status::OK();
}

}  // namespace

util::Status SaveSnapshot(const std::string& path,
                          const rdf::TripleStore& store,
                          const rdf::TextIndex* text, const VsgImage* vsg,
                          const SnapshotWriteOptions& options) {
  util::WallTimer timer;
  util::Status status = SaveSnapshotImpl(path, store, text, vsg, options);
  obs::QueryRecord rec;
  rec.op = obs::QueryOp::kSnapshotSave;
  rec.freeze_epoch = store.freeze_epoch();
  rec.fingerprint = obs::FingerprintQuery(path);  // identity = target path
  rec.rows_out = store.size();
  rec.status = static_cast<uint8_t>(status.code());
  rec.total_millis = timer.ElapsedMillis();
  obs::QueryLog::Global().AppendCompleted(rec, path);
  return status;
}

// --- load --------------------------------------------------------------------

namespace {

util::Result<LoadedSnapshot> LoadSnapshotImpl(
    const std::string& path, const SnapshotLoadOptions& options) {
  obs::Span span("snapshot.load");
  span.SetAttr("mmap", options.use_mmap ? "true" : "false");
  RE2X_FAILPOINT("snapshot.load");
  RE2X_RETURN_IF_ERROR(GuardCheck(options.guard));
  util::WallTimer timer;

  // Source bytes: one mapping (zero-copy candidate) or one heap read.
  const std::byte* base = nullptr;
  size_t size = 0;
  std::shared_ptr<const void> keepalive;
  if (options.use_mmap) {
    RE2X_ASSIGN_OR_RETURN(std::shared_ptr<MappedFile> mapped,
                          MappedFile::Open(path));
    base = mapped->data();
    size = mapped->size();
    keepalive = std::move(mapped);
  } else {
    RE2X_ASSIGN_OR_RETURN(std::shared_ptr<std::vector<std::byte>> buf,
                          ReadFileBytes(path));
    base = buf->data();
    size = buf->size();
    keepalive = std::move(buf);
  }

  RE2X_ASSIGN_OR_RETURN(SnapshotInfo info, ParseHeader(base, size, size));
  if (options.verify_checksums) {
    RE2X_RETURN_IF_ERROR(
        VerifySectionChecksums(base, info, options.pool, options.guard));
  }

  // Required sections. An image carries exactly one index trio: the raw
  // arrays (version 1) or the compressed block sections (version >= 2).
  const SectionInfo* dict_sec = FindSection(info, SectionId::kDictionary);
  const SectionInfo* spo_sec = FindSection(info, SectionId::kSpo);
  const SectionInfo* pos_sec = FindSection(info, SectionId::kPos);
  const SectionInfo* osp_sec = FindSection(info, SectionId::kOsp);
  const SectionInfo* spob_sec = FindSection(info, SectionId::kSpoBlocks);
  const SectionInfo* posb_sec = FindSection(info, SectionId::kPosBlocks);
  const SectionInfo* ospb_sec = FindSection(info, SectionId::kOspBlocks);
  const SectionInfo* stats_sec = FindSection(info, SectionId::kPredicateStats);
  const bool raw_trio =
      spo_sec != nullptr && pos_sec != nullptr && osp_sec != nullptr;
  const bool compressed_trio =
      spob_sec != nullptr && posb_sec != nullptr && ospb_sec != nullptr;
  if (dict_sec == nullptr || stats_sec == nullptr ||
      (!raw_trio && !compressed_trio)) {
    return util::Status::ParseError(
        "snapshot is missing a required section (dictionary/predicate_stats/"
        "index trio)");
  }
  if (raw_trio && compressed_trio) {
    return util::Status::ParseError(
        "snapshot carries both raw and compressed index sections");
  }
  // ParseHeader already rejects a kDeltaChain id in pre-v3 images, so only
  // the missing direction can actually fire here.
  const SectionInfo* delta_sec = FindSection(info, SectionId::kDeltaChain);
  if ((info.version >= kSnapshotVersionLive) != (delta_sec != nullptr)) {
    return util::Status::ParseError(
        "snapshot version disagrees with the delta_chain section (version "
        "3 images carry exactly one, earlier versions none)");
  }
  if (info.triple_count == 0 || info.term_count == 0) {
    return util::Status::ParseError(
        "snapshot declares an empty store; images of empty stores are "
        "never written");
  }

  // Triple index sections: structural + content validation before any
  // adoption. Raw-path state and compressed-path state are disjoint.
  std::span<const EncodedTriple> spo, pos, osp;
  rdf::CompressedPermutation spo_cp, pos_cp, osp_cp;
  if (compressed_trio) {
    struct PermSection {
      const SectionInfo* sec;
      rdf::Perm perm;
      const char* what;
      rdf::CompressedPermutation* out;
    };
    const PermSection perms[3] = {
        {spob_sec, rdf::Perm::kSpo, "spo_blocks", &spo_cp},
        {posb_sec, rdf::Perm::kPos, "pos_blocks", &pos_cp},
        {ospb_sec, rdf::Perm::kOsp, "osp_blocks", &osp_cp},
    };
    for (const PermSection& p : perms) {
      RE2X_ASSIGN_OR_RETURN(CompressedSectionView view,
                            CompressedView(base, *p.sec, info.triple_count));
      RE2X_RETURN_IF_ERROR(ValidateCompressedPerm(view, p.perm,
                                                  info.term_count, p.what,
                                                  options.pool, options.guard,
                                                  p.out));
    }
  } else {
    auto triple_view = [&](const SectionInfo& s)
        -> util::Result<std::span<const EncodedTriple>> {
      if (s.bytes % sizeof(EncodedTriple) != 0) {
        return util::Status::ParseError(
            std::string("snapshot section ") + SectionName(s.id) +
            " is not a whole number of triples");
      }
      uint64_t count = s.bytes / sizeof(EncodedTriple);
      if (count != info.triple_count) {
        return util::Status::ParseError(
            std::string("snapshot section ") + SectionName(s.id) + " holds " +
            std::to_string(count) + " triples, header declares " +
            std::to_string(info.triple_count));
      }
      return std::span<const EncodedTriple>(
          reinterpret_cast<const EncodedTriple*>(base + s.offset), count);
    };
    RE2X_ASSIGN_OR_RETURN(spo, triple_view(*spo_sec));
    RE2X_ASSIGN_OR_RETURN(pos, triple_view(*pos_sec));
    RE2X_ASSIGN_OR_RETURN(osp, triple_view(*osp_sec));
    RE2X_RETURN_IF_ERROR(ValidateTriples(spo, info.term_count, SpoLess, "spo",
                                         options.pool, options.guard));
    RE2X_RETURN_IF_ERROR(ValidateTriples(pos, info.term_count, PosLess, "pos",
                                         options.pool, options.guard));
    RE2X_RETURN_IF_ERROR(ValidateTriples(osp, info.term_count, OspLess, "osp",
                                         options.pool, options.guard));
  }

  LoadedSnapshot out;
  out.info = info;
  out.store = std::make_unique<rdf::TripleStore>();

  // Decode the heap-materialized sections; dictionary / text / graph are
  // independent targets, so they fan out across the pool.
  const SectionInfo* text_sec = FindSection(info, SectionId::kTextIndex);
  const SectionInfo* vsg_sec = FindSection(info, SectionId::kVsg);
  if (info.has_text_index != (text_sec != nullptr) ||
      info.has_vsg != (vsg_sec != nullptr)) {
    return util::Status::ParseError(
        "snapshot header flags disagree with the section table");
  }
  std::unordered_map<TermId, rdf::PredicateStats> stats;
  VsgImage vsg_image;
  static obs::Histogram& decode_hist =
      obs::MetricsRegistry::Global().GetHistogram(
          "storage.section.decode.millis");
  struct DecodeTask {
    const SectionInfo* sec;
    std::function<util::Status()> run;
    util::Status status;
  };
  std::vector<DecodeTask> tasks;
  auto add_task = [&](const SectionInfo* sec,
                      std::function<util::Status()> run) {
    tasks.push_back(DecodeTask{sec, std::move(run), util::Status::OK()});
  };
  add_task(dict_sec, [&] {
    return DecodeDictionary(base + dict_sec->offset, dict_sec->bytes,
                            info.term_count, options.guard,
                            &out.store->dictionary());
  });
  add_task(stats_sec, [&] {
    return DecodeStats(base + stats_sec->offset, stats_sec->bytes,
                       info.term_count, &stats);
  });
  if (text_sec != nullptr) {
    add_task(text_sec, [&] {
      return DecodeTextIndex(base + text_sec->offset, text_sec->bytes,
                             info.term_count, options.guard, &out.text);
    });
  }
  if (vsg_sec != nullptr) {
    add_task(vsg_sec, [&] {
      return DecodeVsg(base + vsg_sec->offset, vsg_sec->bytes,
                       info.term_count, &vsg_image);
    });
  }
  RunParallel(options.pool, tasks.size(), [&](size_t i) {
    obs::Span sec_span("snapshot.load.section");
    sec_span.SetAttr("section", SectionName(tasks[i].sec->id));
    util::WallTimer sec_timer;
    tasks[i].status = tasks[i].run();
    decode_hist.Observe(sec_timer.ElapsedMillis());
  });
  for (const DecodeTask& t : tasks) RE2X_RETURN_IF_ERROR(t.status);
  RE2X_RETURN_IF_ERROR(GuardCheck(options.guard));
  if (vsg_sec != nullptr) out.vsg = std::move(vsg_image);

  // Delta layers decode on the calling thread (their validation fans out
  // over the pool itself, which must not nest inside the task fan-out).
  std::vector<std::shared_ptr<const rdf::DeltaLayer>> delta_layers;
  if (delta_sec != nullptr) {
    RE2X_ASSIGN_OR_RETURN(
        delta_layers,
        DecodeDeltaChain(base + delta_sec->offset, delta_sec->bytes,
                         info.term_count, options.pool, options.guard));
  }

  // Both modes adopt the index sections as views into the loaded image —
  // a mapped file or an owned heap buffer — with the image as keepalive,
  // so no index bytes are copied. The first mutation materializes owned
  // vectors either way; heap-mode loads are file-independent the moment
  // this returns (the buffer, not the file, backs the views).
  if (compressed_trio) {
    out.store->AdoptFrozenCompressed(std::move(spo_cp), std::move(pos_cp),
                                     std::move(osp_cp), std::move(stats),
                                     info.freeze_epoch, keepalive);
  } else {
    out.store->AdoptFrozenView(spo, pos, osp, std::move(stats),
                               info.freeze_epoch, keepalive);
  }
  // Version 3: the adopted trio is the chain base — resume live mode and
  // republish the saved layers at the saved epoch (RestoreChain recomputes
  // merged stats, visible count and delta totals from the layers).
  if (delta_sec != nullptr) {
    out.store->EnterLive();
    out.store->RestoreChain(std::move(delta_layers), info.freeze_epoch);
  }

  obs::MetricsRegistry::Global().GetCounter("storage.loads").Inc();
  obs::MetricsRegistry::Global()
      .GetCounter("storage.load.bytes")
      .Inc(info.file_bytes);
  obs::MetricsRegistry::Global()
      .GetHistogram("storage.load.millis")
      .Observe(timer.ElapsedMillis());
  span.SetAttr("bytes", info.file_bytes);
  span.SetAttr("triples", info.triple_count);
  return out;
}

}  // namespace

util::Result<LoadedSnapshot> LoadSnapshot(const std::string& path,
                                          const SnapshotLoadOptions& options) {
  util::WallTimer timer;
  util::Result<LoadedSnapshot> result = LoadSnapshotImpl(path, options);
  obs::QueryRecord rec;
  rec.op = obs::QueryOp::kSnapshotLoad;
  rec.fingerprint = obs::FingerprintQuery(path);  // identity = source path
  rec.status = static_cast<uint8_t>(
      result.ok() ? util::StatusCode::kOk : result.status().code());
  if (result.ok()) {
    rec.freeze_epoch = result.value().info.freeze_epoch;
    rec.rows_out = result.value().info.triple_count;
  }
  rec.total_millis = timer.ElapsedMillis();
  obs::QueryLog::Global().AppendCompleted(rec, path);
  return result;
}

// --- inspect / verify --------------------------------------------------------

util::Result<SnapshotInfo> InspectSnapshot(const std::string& path) {
  // Two bounded reads: the fixed prefix tells us the table size, then the
  // exact header region is re-read and validated. Payload stays untouched.
  uint64_t file_size = 0;
  RE2X_ASSIGN_OR_RETURN(
      std::vector<std::byte> prefix,
      ReadFilePrefix(path, kFixedHeaderBytes, &file_size));
  if (prefix.size() < kFixedHeaderBytes) {
    return util::Status::ParseError(
        "truncated snapshot: file is smaller than the fixed header");
  }
  uint32_t section_count = 0;
  std::memcpy(&section_count, prefix.data() + 12, sizeof(section_count));
  if (section_count == 0 || section_count > kMaxSections) {
    return util::Status::ParseError("snapshot section count " +
                                    std::to_string(section_count) +
                                    " is implausible");
  }
  RE2X_ASSIGN_OR_RETURN(
      std::vector<std::byte> header,
      ReadFilePrefix(path, HeaderBytes(section_count), &file_size));
  return ParseHeader(header.data(), header.size(), file_size);
}

util::Result<SnapshotInfo> VerifySnapshot(const std::string& path,
                                          util::ThreadPool* pool) {
  obs::Span span("snapshot.verify");
  RE2X_ASSIGN_OR_RETURN(std::shared_ptr<std::vector<std::byte>> buf,
                        ReadFileBytes(path));
  RE2X_ASSIGN_OR_RETURN(SnapshotInfo info,
                        ParseHeader(buf->data(), buf->size(), buf->size()));
  RE2X_RETURN_IF_ERROR(
      VerifySectionChecksums(buf->data(), info, pool, nullptr));
  // Compressed images get the full per-block pass on top of the section
  // checksums: every block's own checksum, strict in-block ordering, exact
  // byte consumption, and skip-table monotonicity across block seams.
  struct PermSection {
    SectionId id;
    rdf::Perm perm;
    const char* what;
  };
  constexpr PermSection kPerms[3] = {
      {SectionId::kSpoBlocks, rdf::Perm::kSpo, "spo_blocks"},
      {SectionId::kPosBlocks, rdf::Perm::kPos, "pos_blocks"},
      {SectionId::kOspBlocks, rdf::Perm::kOsp, "osp_blocks"},
  };
  for (const PermSection& p : kPerms) {
    const SectionInfo* sec = FindSection(info, p.id);
    if (sec == nullptr) continue;
    RE2X_ASSIGN_OR_RETURN(
        CompressedSectionView view,
        CompressedView(buf->data(), *sec, info.triple_count));
    RE2X_RETURN_IF_ERROR(ValidateCompressedPerm(
        view, p.perm, info.term_count, p.what, pool, nullptr, nullptr));
  }
  return info;
}

}  // namespace re2xolap::storage
