#ifndef RE2XOLAP_STORAGE_SNAPSHOT_H_
#define RE2XOLAP_STORAGE_SNAPSHOT_H_

// Persistent snapshot subsystem: versioned binary store images with mmap
// fast-boot. A snapshot serializes a complete frozen dataset — Dictionary
// terms, the three sorted TripleStore index permutations with their
// freeze_epoch, per-predicate statistics, the TextIndex postings, and the
// VirtualSchemaGraph — into one file, so subsequent processes boot by
// loading (or zero-copy mmap-ing) the image instead of re-parsing
// N-Triples and re-crawling the graph (the paper's Fig-6 bootstrap cost,
// paid once instead of per process).
//
// File layout (all integers little-endian):
//
//   +--------------------------------------------------------------+
//   | magic "R2XSNAP\n" | version u32 | section_count u32          |
//   | file_bytes u64 | freeze_epoch u64                            |
//   | triple_count u64 | term_count u64 | flags u64                |
//   +--------------------------------------------------------------+
//   | section table: section_count x                               |
//   |   { id u32 | pad u32 | offset u64 | bytes u64 | xxh64 u64 }  |
//   +--------------------------------------------------------------+
//   | header_checksum u64  (XXH64 of every preceding byte)         |
//   +--- 64-byte aligned ------------------------------------------+
//   | section payloads, each 64-byte aligned, checksummed above    |
//   +--------------------------------------------------------------+
//
// The triple-index sections (SPO/POS/OSP) are raw arrays of 12-byte
// (s,p,o) id triples at 64-byte-aligned offsets, so a loader may point the
// TripleStore directly into the mapped file (zero copy) instead of copying.
//
// Version 2 images replace the three raw index sections with compressed
// block sections (kSpoBlocks/kPosBlocks/kOspBlocks): a 32-byte section
// header { triple_count u64 | block_count u64 | payload_bytes u64 |
// block_size u32 | reserved u32 }, then the BlockMeta skip table (24 bytes
// per block, 8-aligned because sections start 64-aligned), then the
// delta/vbyte payload (see rdf/compressed_index.h). The loader validates
// every block (checksum, strict ordering, term-id ranges, cross-block
// boundaries) before adopting the skip/payload spans zero-copy via
// TripleStore::AdoptFrozenCompressed. Raw-format stores keep writing
// version 1 images byte-identical to pre-v2 builds, and version 1 images
// load unchanged.
//
// Version 3 images persist a live store (rdf/delta_layer.h) whose epoch
// chain carries delta layers: the index trio (raw or compressed) holds the
// chain's base, header triple_count counts that base, freeze_epoch is the
// chain's epoch, and one kDeltaChain section holds every sealed layer. The
// loader adopts the base, re-enters live mode and republishes the layers
// (TripleStore::RestoreChain), so queries, cache keys and the visible
// triple set resume exactly where the saved process stopped. A live store
// with an empty chain writes a plain version 1/2 image (a compacted base
// is written as the raw trio), losing nothing but the liveness flag.
// Saving a live store requires ingestion to be quiesced — no concurrent
// IngestText/Compact publication during the save.
//
// Corruption is a first-class path: every failure mode surfaces as a typed
// util::Status, never UB —
//   bad magic / truncation / checksum mismatch / malformed payload
//     / out-of-range term ids / unsorted index        -> kParseError
//   unsupported version / snapshot of an empty store  -> kInvalidArgument
//   missing file                                      -> kNotFound
//   I/O errors                                        -> kExecutionError
//   tripped ExecGuard                                 -> kTimeout / ...

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/virtual_schema_graph.h"
#include "rdf/text_index.h"
#include "rdf/triple_store.h"
#include "util/exec_guard.h"
#include "util/result.h"
#include "util/status.h"

namespace re2xolap::util {
class ThreadPool;
}

namespace re2xolap::storage {

inline constexpr char kSnapshotMagic[8] = {'R', '2', 'X', 'S',
                                           'N', 'A', 'P', '\n'};
inline constexpr uint32_t kSnapshotVersion = 1;
/// Version written for compressed-index images (raw stores keep writing
/// version 1 so their images stay byte-identical to older builds).
inline constexpr uint32_t kSnapshotVersionCompressed = 2;
/// Version written for live stores whose epoch chain carries delta layers:
/// the index trio holds the chain's base and a kDeltaChain section holds
/// the layers, so a loaded image resumes live at the exact saved epoch. A
/// live store with an empty chain writes a plain version 1/2 image.
inline constexpr uint32_t kSnapshotVersionLive = 3;
/// Section payloads (and the first payload after the header) start at
/// multiples of this, so raw triple arrays are safely mmap-addressable.
inline constexpr uint64_t kSectionAlignment = 64;

/// Section identifiers in the section table. Values are part of the file
/// format; never renumber.
enum class SectionId : uint32_t {
  kDictionary = 1,      // interned terms, id order
  kSpo = 2,             // raw EncodedTriple array sorted by (s,p,o)
  kPos = 3,             // raw EncodedTriple array sorted by (p,o,s)
  kOsp = 4,             // raw EncodedTriple array sorted by (o,s,p)
  kPredicateStats = 5,  // planner cardinality statistics
  kTextIndex = 6,       // keyword + exact postings (optional)
  kVsg = 7,             // virtual schema graph parts (optional)
  // Version >= 2 only: compressed block permutations, replacing kSpo/
  // kPos/kOsp (an image carries exactly one of the two index trios).
  kSpoBlocks = 8,   // skip table + delta/vbyte payload, (s,p,o) order
  kPosBlocks = 9,   // skip table + delta/vbyte payload, (p,o,s) order
  kOspBlocks = 10,  // skip table + delta/vbyte payload, (o,s,p) order
  // Version >= 3 only: the live store's sealed delta layers (inserts and
  // tombstones above the base index trio). Layout: layer_count u64, then
  // per layer { batch_id u64 | add_count u64 | del_count u64 } followed by
  // six raw EncodedTriple arrays (add spo/pos/osp, then del spo/pos/osp).
  kDeltaChain = 11,
};

/// Stable display name ("dictionary", "spo", ...) for diagnostics.
const char* SectionName(SectionId id);

/// Flag bits in the header's `flags` word.
inline constexpr uint64_t kFlagHasTextIndex = 1u << 0;
inline constexpr uint64_t kFlagHasVsg = 1u << 1;

/// One section-table entry as parsed from (or written to) an image.
struct SectionInfo {
  SectionId id = SectionId::kDictionary;
  uint64_t offset = 0;
  uint64_t bytes = 0;
  uint64_t checksum = 0;
};

/// Parsed header + section table of a snapshot image.
struct SnapshotInfo {
  uint32_t version = 0;
  uint64_t file_bytes = 0;
  uint64_t freeze_epoch = 0;
  uint64_t triple_count = 0;
  uint64_t term_count = 0;
  bool has_text_index = false;
  bool has_vsg = false;
  std::vector<SectionInfo> sections;
};

/// The VirtualSchemaGraph's constituent parts as stored in a snapshot.
/// Reconstruct with core::VirtualSchemaGraph::FromParts (which re-derives
/// the member index and level paths and validates edge endpoints); capture
/// from a live graph with MakeVsgImage below.
struct VsgImage {
  std::vector<core::VsgNode> nodes;
  std::vector<core::VsgEdge> edges;
  std::vector<rdf::TermId> measures;
  std::vector<rdf::TermId> observation_attrs;
};

/// Copies the serializable parts out of a built graph.
inline VsgImage MakeVsgImage(const core::VirtualSchemaGraph& g) {
  return VsgImage{g.nodes(), g.edges(), g.measure_predicates(),
                  g.observation_attributes()};
}

/// Options for SaveSnapshot. When `pool` is non-null, section encoding and
/// checksumming fan out across it; `guard` is polled between sections and
/// inside the long per-term/posting loops, so an expired deadline aborts
/// the save with its typed status (and no file is left behind — writes are
/// atomic via rename).
struct SnapshotWriteOptions {
  util::ThreadPool* pool = nullptr;
  const util::ExecGuard* guard = nullptr;
};

/// Options for LoadSnapshot. The three triple-index arrays are always
/// zero-copy views into the loaded image (the TripleStore keeps the image
/// alive; see TripleStore::AdoptFrozenView); `use_mmap` selects what backs
/// the image: the mapped file (lazy page-in, cheapest start) or a heap
/// buffer read in one pass (independent of the file once loaded).
/// Dictionary, text and graph sections are always materialized on the
/// heap since they build hash indexes anyway. `verify_checksums` can be
/// disabled for trusted images to skip the checksum pass (structural
/// bounds checks still run).
struct SnapshotLoadOptions {
  bool use_mmap = false;
  bool verify_checksums = true;
  util::ThreadPool* pool = nullptr;
  const util::ExecGuard* guard = nullptr;
};

/// A reconstructed dataset image. `store` is always present and frozen at
/// the image's epoch; `text` and `vsg` are present when the image carried
/// those sections. The zero-copy mapping (if any) is owned by the store.
/// Version 3 images hand back a store already in live mode with the saved
/// delta layers republished at the saved epoch.
struct LoadedSnapshot {
  SnapshotInfo info;
  std::unique_ptr<rdf::TripleStore> store;
  std::unique_ptr<rdf::TextIndex> text;
  std::optional<VsgImage> vsg;
};

/// Serializes `store` (which must be frozen and non-empty) plus the
/// optional text index and graph image into a snapshot file at `path`.
/// Live stores write a version 3 image when their chain carries layers
/// (see the format notes above); the caller must quiesce ingestion first.
/// Registered failpoint: `snapshot.save`.
util::Status SaveSnapshot(const std::string& path,
                          const rdf::TripleStore& store,
                          const rdf::TextIndex* text, const VsgImage* vsg,
                          const SnapshotWriteOptions& options = {});

/// Validates and reconstructs a snapshot image saved by SaveSnapshot. The
/// loaded store observes the exact freeze_epoch the image was saved at, so
/// engine cache keys behave identically across the save/load cycle.
/// Registered failpoint: `snapshot.load`.
util::Result<LoadedSnapshot> LoadSnapshot(
    const std::string& path, const SnapshotLoadOptions& options = {});

/// Reads and validates only the header + section table (magic, version,
/// declared vs actual file size, header checksum) — no payload pages are
/// touched, so this is O(header) regardless of image size.
util::Result<SnapshotInfo> InspectSnapshot(const std::string& path);

/// Full integrity pass: header validation plus every section checksum
/// (parallelized over `pool` when given). Does not reconstruct anything.
util::Result<SnapshotInfo> VerifySnapshot(const std::string& path,
                                          util::ThreadPool* pool = nullptr);

}  // namespace re2xolap::storage

#endif  // RE2XOLAP_STORAGE_SNAPSHOT_H_
