#ifndef RE2XOLAP_ENGINE_QUERY_ENGINE_H_
#define RE2XOLAP_ENGINE_QUERY_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/triple_store.h"
#include "sparql/executor.h"
#include "sparql/plan.h"
#include "sparql/result_table.h"
#include "storage/snapshot.h"
#include "util/result.h"

namespace re2xolap::engine {

class QueryEngine;

/// A dataset + engine pair reconstructed from a snapshot image by
/// QueryEngine::OpenSnapshot. `engine` reads `data.store`, so keep the pair
/// together (moving the struct is fine; the unique_ptr targets are stable).
struct EngineSnapshot {
  storage::LoadedSnapshot data;
  std::unique_ptr<QueryEngine> engine;
};

/// Shared, immutable handle to a materialized result. Cache hits hand the
/// same table to every caller, so results must never be mutated through a
/// handle (enforced by const).
using TableHandle = std::shared_ptr<const sparql::ResultTable>;

/// Cache sizing knobs. Zero capacity disables the corresponding cache.
struct EngineConfig {
  /// Max distinct plans kept (LRU beyond that). 0 disables plan caching.
  size_t plan_cache_capacity = 256;
  /// Total byte budget across all result-cache shards, charged per entry
  /// by an estimate of its resident size. 0 disables result caching.
  size_t result_cache_bytes = 8u << 20;
  /// Lock shards for the result cache; each shard owns an equal slice of
  /// the byte budget and its own LRU list, so concurrent validation
  /// threads rarely contend on one mutex.
  size_t result_cache_shards = 4;
  /// Bounded retry for transient (kUnavailable) execution failures: total
  /// attempts = 1 + max_transient_retries. 0 disables retry. Cache
  /// lookups and planning are not repeated — only the execution proper.
  int max_transient_retries = 2;
  /// Backoff before retry k is `retry_backoff_millis << (k-1)` (simple
  /// exponential). 0 retries immediately.
  uint64_t retry_backoff_millis = 1;
};

/// Point-in-time counters of one engine instance (global metrics aggregate
/// across engines; tests assert on these to stay isolated).
struct EngineCacheStats {
  uint64_t plan_hits = 0;
  uint64_t plan_misses = 0;
  uint64_t plan_evictions = 0;
  uint64_t result_hits = 0;
  uint64_t result_misses = 0;
  uint64_t result_evictions = 0;
  uint64_t retries = 0;  // transient-failure re-executions
  size_t plan_entries = 0;
  size_t result_entries = 0;
  size_t result_bytes = 0;  // resident cost estimate across shards
};

/// The single execution entry point for a frozen store: owns the full
/// parse→plan→execute pipeline plus two caches keyed on the normalized
/// query text and the store's freeze epoch.
///
/// - Plan cache: LRU map of normalized query → immutable Plan. Plans are
///   read-only during execution, so one cached plan serves concurrent
///   executions.
/// - Result cache: sharded, byte-budgeted LRU of normalized query →
///   TableHandle. Entries are charged an estimate of their resident size;
///   a shard over its slice of the budget evicts least-recently-used
///   entries.
///
/// Invalidation: every Execute compares the store's freeze_epoch()
/// against the epoch the caches were built at; a re-Freeze() (the only
/// way new data becomes visible) clears both caches, and the epoch is
/// also part of every key, so a stale entry can never be served even if
/// it races the clear.
///
/// Concurrency: all public methods are safe to call from multiple threads
/// once the store is frozen (the store's own read contract). Lookups and
/// inserts take one small mutex (plan cache) or one shard mutex (result
/// cache); execution itself runs lock-free.
///
/// Caching policy: timeouts are not part of the key (they bound latency,
/// not the result); errored executions are never cached; profiled runs
/// (ExecOptions::profile) bypass the result cache because EXPLAIN ANALYZE
/// must observe a real execution. On a result-cache hit the ExecStats
/// sink is zeroed — a hit scans nothing and plans nothing.
///
/// Robustness: an ExecOptions::guard is checked once on entry (an already
/// expired/cancelled request does no work, not even a cache probe) and
/// then enforced by the executor; guard violations are errors and are
/// therefore never cached. Transient (kUnavailable) execution failures —
/// including those injected via the `engine.execute` failpoint — are
/// retried up to EngineConfig::max_transient_retries times with
/// exponential backoff; cache counters still count once per logical
/// Execute because only the execution proper is repeated.
class QueryEngine {
 public:
  explicit QueryEngine(const rdf::TripleStore& store,
                       EngineConfig config = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Executes `query`, serving from / filling the caches.
  util::Result<TableHandle> Execute(const sparql::SelectQuery& query,
                                    const sparql::ExecOptions& options = {},
                                    sparql::ExecStats* stats = nullptr);

  /// Convenience: parse + Execute.
  util::Result<TableHandle> ExecuteText(std::string_view text,
                                        const sparql::ExecOptions& options = {},
                                        sparql::ExecStats* stats = nullptr);

  /// Drops every cached plan and result and records the store's current
  /// freeze epoch. Called automatically when the epoch moves.
  void InvalidateCaches();

  /// Serializes this engine's (frozen) store into a snapshot image at
  /// `path`. Store-only: text-index and schema-graph sections are written
  /// by core::Session::SaveSnapshot, which sees those structures.
  util::Status SaveSnapshot(
      const std::string& path,
      const storage::SnapshotWriteOptions& options = {}) const;

  /// Boots a store + engine from a snapshot image. The engine's caches
  /// start empty but are keyed on the image's restored freeze_epoch, so
  /// they behave exactly as they would on the store the image was saved
  /// from.
  static util::Result<EngineSnapshot> OpenSnapshot(
      const std::string& path,
      const storage::SnapshotLoadOptions& options = {},
      EngineConfig config = {});

  /// Snapshot of this instance's cache counters.
  EngineCacheStats cache_stats() const;

  const rdf::TripleStore& store() const { return store_; }
  const EngineConfig& config() const { return config_; }

 private:
  struct PlanEntry {
    std::string key;
    std::shared_ptr<const sparql::Plan> plan;
  };
  struct ResultEntry {
    std::string key;
    TableHandle table;
    size_t cost = 0;
    /// Query-log fingerprint of the normalized query, stored at insert
    /// time so cache hits record their identity without rehashing the
    /// query text (0 when the recorder was disabled at insert).
    uint64_t fingerprint = 0;
  };
  struct ResultShard {
    mutable std::mutex mu;
    std::list<ResultEntry> lru;  // front = most recent
    std::unordered_map<std::string, std::list<ResultEntry>::iterator> index;
    size_t bytes = 0;
  };

  /// Clears caches if the store has been re-frozen since they were built;
  /// returns the current epoch.
  uint64_t SyncEpoch();

  std::shared_ptr<const sparql::Plan> PlanLookup(const std::string& key);
  void PlanInsert(const std::string& key,
                  std::shared_ptr<const sparql::Plan> plan);

  ResultShard& ShardFor(const std::string& key);
  /// On a hit, `fingerprint` (when non-null) receives the entry's stored
  /// query-log fingerprint.
  TableHandle ResultLookup(const std::string& key, uint64_t* fingerprint);
  void ResultInsert(const std::string& key, const TableHandle& table,
                    uint64_t fingerprint);

  const rdf::TripleStore& store_;
  const EngineConfig config_;

  std::atomic<uint64_t> seen_epoch_;

  mutable std::mutex plan_mu_;
  std::list<PlanEntry> plan_lru_;  // front = most recent
  std::unordered_map<std::string, std::list<PlanEntry>::iterator> plan_index_;

  std::vector<std::unique_ptr<ResultShard>> shards_;

  // Per-instance counters (relaxed; exact under the test's sync points).
  std::atomic<uint64_t> plan_hits_{0}, plan_misses_{0}, plan_evictions_{0};
  std::atomic<uint64_t> result_hits_{0}, result_misses_{0},
      result_evictions_{0};
  std::atomic<uint64_t> retries_{0};
};

/// Estimated resident bytes of a materialized table (container overheads
/// included); the unit the result cache charges entries in.
size_t EstimateTableCost(const sparql::ResultTable& table);

}  // namespace re2xolap::engine

#endif  // RE2XOLAP_ENGINE_QUERY_ENGINE_H_
