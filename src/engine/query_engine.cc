#include "engine/query_engine.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "sparql/ast.h"
#include "sparql/explain.h"
#include "sparql/parser.h"
#include "util/failpoint.h"
#include "util/timer.h"

namespace re2xolap::engine {

namespace {

struct EngineMetrics {
  obs::Counter& plan_hits;
  obs::Counter& plan_misses;
  obs::Counter& plan_evictions;
  obs::Counter& result_hits;
  obs::Counter& result_misses;
  obs::Counter& result_evictions;
  obs::Counter& retries;
  obs::Histogram& hit_millis;
  obs::Histogram& miss_millis;

  static EngineMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static EngineMetrics m{
        reg.GetCounter("engine.plan_cache.hits"),
        reg.GetCounter("engine.plan_cache.misses"),
        reg.GetCounter("engine.plan_cache.evictions"),
        reg.GetCounter("engine.result_cache.hits"),
        reg.GetCounter("engine.result_cache.misses"),
        reg.GetCounter("engine.result_cache.evictions"),
        reg.GetCounter("engine.retries"),
        reg.GetHistogram("engine.execute.hit.millis"),
        reg.GetHistogram("engine.execute.miss.millis"),
    };
    return m;
  }
};

/// Cache key: freeze epoch | planner flags | normalized query text. The
/// epoch prefix makes entries from a previous index state unreachable
/// even if they survive an invalidation race; the planner flag
/// distinguishes plans (and the results they produce are identical, but
/// keeping the keys uniform costs one byte). Timeouts are deliberately
/// not part of the key: they bound latency, not the answer, and errored
/// runs are never inserted.
std::string CacheKey(const std::string& normalized_query,
                     const sparql::ExecOptions& options, uint64_t epoch) {
  std::string key = std::to_string(epoch);
  key += options.plan.use_join_reordering ? "|r|" : "|-|";
  key += normalized_query;
  return key;
}

/// Stamps the call's outcome on the flight-recorder record and renders
/// the operator tree while the stats sink is still alive when the record
/// qualifies for slow capture.
void FinishRecord(obs::QueryRecordScope& record,
                  const sparql::ExecStats* stats, util::StatusCode code,
                  int retries, uint64_t rows) {
  if (!record.active()) return;
  obs::QueryRecord& rec = record.rec();
  rec.status = static_cast<uint8_t>(code);
  rec.retries = static_cast<uint32_t>(retries);
  rec.rows_out = rows;
  if (stats != nullptr) {
    rec.triples_scanned = stats->triples_scanned;
    rec.intermediate_bindings = stats->intermediate_bindings;
    rec.plan_millis = stats->plan_millis;
    rec.exec_millis = stats->exec_millis;
  }
  if (stats != nullptr && !stats->profile.label.empty() &&
      record.WillCapture()) {
    record.SetDetail(sparql::RenderProfile(stats->profile,
                                           /*include_timing=*/true));
  }
}

}  // namespace

size_t EstimateTableCost(const sparql::ResultTable& table) {
  size_t cost = sizeof(sparql::ResultTable);
  for (const std::string& c : table.columns()) {
    cost += sizeof(std::string) + c.capacity();
  }
  cost += table.rows().capacity() * sizeof(sparql::Row);
  for (const sparql::Row& r : table.rows()) {
    cost += r.capacity() * sizeof(sparql::Cell);
  }
  return cost;
}

QueryEngine::QueryEngine(const rdf::TripleStore& store, EngineConfig config)
    : store_(store),
      config_(config),
      seen_epoch_(store.freeze_epoch()) {
  size_t n_shards = std::max<size_t>(1, config_.result_cache_shards);
  shards_.reserve(n_shards);
  for (size_t i = 0; i < n_shards; ++i) {
    shards_.push_back(std::make_unique<ResultShard>());
  }
}

uint64_t QueryEngine::SyncEpoch() {
  uint64_t epoch = store_.freeze_epoch();
  if (seen_epoch_.load(std::memory_order_acquire) != epoch) {
    InvalidateCaches();
  }
  return epoch;
}

void QueryEngine::InvalidateCaches() {
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    plan_lru_.clear();
    plan_index_.clear();
  }
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
  seen_epoch_.store(store_.freeze_epoch(), std::memory_order_release);
}

EngineCacheStats QueryEngine::cache_stats() const {
  EngineCacheStats s;
  s.plan_hits = plan_hits_.load(std::memory_order_relaxed);
  s.plan_misses = plan_misses_.load(std::memory_order_relaxed);
  s.plan_evictions = plan_evictions_.load(std::memory_order_relaxed);
  s.result_hits = result_hits_.load(std::memory_order_relaxed);
  s.result_misses = result_misses_.load(std::memory_order_relaxed);
  s.result_evictions = result_evictions_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    s.plan_entries = plan_lru_.size();
  }
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.result_entries += shard->lru.size();
    s.result_bytes += shard->bytes;
  }
  return s;
}

std::shared_ptr<const sparql::Plan> QueryEngine::PlanLookup(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(plan_mu_);
  auto it = plan_index_.find(key);
  if (it == plan_index_.end()) return nullptr;
  plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second);
  return it->second->plan;
}

void QueryEngine::PlanInsert(const std::string& key,
                             std::shared_ptr<const sparql::Plan> plan) {
  std::lock_guard<std::mutex> lock(plan_mu_);
  auto it = plan_index_.find(key);
  if (it != plan_index_.end()) {
    // A concurrent miss planned the same query; keep the incumbent.
    plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second);
    return;
  }
  plan_lru_.push_front(PlanEntry{key, std::move(plan)});
  plan_index_[key] = plan_lru_.begin();
  while (plan_lru_.size() > config_.plan_cache_capacity) {
    plan_index_.erase(plan_lru_.back().key);
    plan_lru_.pop_back();
    plan_evictions_.fetch_add(1, std::memory_order_relaxed);
    EngineMetrics::Get().plan_evictions.Inc();
  }
}

QueryEngine::ResultShard& QueryEngine::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

TableHandle QueryEngine::ResultLookup(const std::string& key,
                                      uint64_t* fingerprint) {
  ResultShard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  if (fingerprint != nullptr) *fingerprint = it->second->fingerprint;
  return it->second->table;
}

void QueryEngine::ResultInsert(const std::string& key,
                               const TableHandle& table,
                               uint64_t fingerprint) {
  // Fault-injection site: `cache.insert=skip` turns the cache write into
  // a no-op (the caller still gets its result; only reuse is lost).
  if (util::FailpointSkip("cache.insert")) return;
  const size_t cost = EstimateTableCost(*table);
  const size_t budget =
      std::max<size_t>(1, config_.result_cache_bytes / shards_.size());
  // An entry bigger than a whole shard's budget would evict everything
  // and immediately exceed the budget itself — don't admit it.
  if (cost > budget) return;
  ResultShard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;  // concurrent miss cached the same result first
  }
  shard.lru.push_front(ResultEntry{key, table, cost, fingerprint});
  shard.index[key] = shard.lru.begin();
  shard.bytes += cost;
  while (shard.bytes > budget && shard.lru.size() > 1) {
    ResultEntry& victim = shard.lru.back();
    shard.bytes -= victim.cost;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    result_evictions_.fetch_add(1, std::memory_order_relaxed);
    EngineMetrics::Get().result_evictions.Inc();
  }
}

util::Result<TableHandle> QueryEngine::Execute(
    const sparql::SelectQuery& query, const sparql::ExecOptions& options,
    sparql::ExecStats* stats) {
  EngineMetrics& metrics = EngineMetrics::Get();
  obs::Span span("engine.execute");
  util::WallTimer timer;
  // The record shares the timer's clock read: a recorded cache hit costs
  // zero clock reads beyond what the latency histogram already takes.
  obs::QueryRecordScope record(obs::QueryOp::kEngineExecute,
                               obs::TraceMicrosAt(timer.start()));

  // An already expired / cancelled / over-budget request does no work at
  // all — not even a cache probe.
  if (options.guard != nullptr) {
    util::Status guard_status = options.guard->Check();
    if (!guard_status.ok()) {
      span.SetAttr("status", util::StatusCodeToString(guard_status.code()));
      if (record.active()) {
        // Identity still matters on the reject path: guard-tripped
        // records land in the slow-query log with their query text.
        record.SetQueryText(sparql::ToSparql(query));
        record.rec().status = static_cast<uint8_t>(guard_status.code());
      }
      return guard_status;
    }
  }

  // Pin the store's epoch chain for the whole request (no-op on classic
  // stores): every index read below — cache-key epoch, planning stats,
  // execution — sees one consistent chain even while ingest or compaction
  // publish newer epochs concurrently.
  rdf::TripleStore::ReadPin pin(store_);
  const uint64_t epoch = SyncEpoch();
  span.SetAttr("epoch", epoch);
  std::string normalized = sparql::ToSparql(query);
  const std::string key = CacheKey(normalized, options, epoch);
  if (record.active()) {
    record.rec().freeze_epoch = epoch;
    record.rec().executor =
        static_cast<uint8_t>(sparql::ResolveExecutor(options.executor));
    // Fingerprinting waits until the cache outcome is known: hits reuse
    // the fingerprint stored with the cached entry.
  }

  // Profiled runs bypass the result cache: EXPLAIN ANALYZE has to observe
  // a real execution, and its operator tree would be meaningless for a
  // table served from memory.
  const bool use_result_cache =
      config_.result_cache_bytes > 0 && !options.profile;

  if (use_result_cache) {
    uint64_t cached_fingerprint = 0;
    if (TableHandle hit = ResultLookup(key, &cached_fingerprint)) {
      result_hits_.fetch_add(1, std::memory_order_relaxed);
      metrics.result_hits.Inc();
      // A hit scans nothing and plans nothing; see ExplorationStats for
      // the same convention.
      if (stats != nullptr) *stats = sparql::ExecStats{};
      const double hit_millis = timer.ElapsedMillis();
      metrics.hit_millis.Observe(hit_millis);
      span.SetAttr("cache", "hit");
      span.SetAttr("rows", static_cast<uint64_t>(hit->rows().size()));
      span.SetAttr("status", "OK");
      if (record.active()) {
        record.rec().cache = obs::CacheOutcome::kHit;
        record.rec().rows_out = hit->rows().size();
        // Hand the record the latency we just measured, so its scope
        // destructor skips a second clock read.
        record.rec().total_millis = hit_millis;
        record.SetQueryText(std::move(normalized), cached_fingerprint);
      }
      return hit;
    }
    result_misses_.fetch_add(1, std::memory_order_relaxed);
    metrics.result_misses.Inc();
  }
  span.SetAttr("cache", use_result_cache ? "miss" : "bypass");
  if (record.active()) {
    record.rec().cache =
        use_result_cache ? obs::CacheOutcome::kMiss : obs::CacheOutcome::kBypass;
    record.SetQueryText(std::move(normalized));
  }

  // From here on a stats sink is always present when the recorder is
  // active, so slow and guard-tripped runs carry an operator tree.
  sparql::ExecStats local_stats;
  if (record.active() && stats == nullptr) stats = &local_stats;

  // Resolve the plan once (a cache hit or a single planning pass); ASK
  // queries are rewritten into existence probes before planning, so a
  // cached plan can never apply to them.
  std::shared_ptr<const sparql::Plan> plan;
  if (config_.plan_cache_capacity > 0 && !query.is_ask) {
    plan = PlanLookup(key);
    if (plan != nullptr) {
      plan_hits_.fetch_add(1, std::memory_order_relaxed);
      metrics.plan_hits.Inc();
      if (stats != nullptr) stats->plan_millis = 0;
    } else {
      plan_misses_.fetch_add(1, std::memory_order_relaxed);
      metrics.plan_misses.Inc();
      util::WallTimer plan_timer;
      util::Result<sparql::Plan> planned =
          sparql::PlanQuery(store_, query, options.plan);
      if (!planned.ok()) {
        span.SetAttr("status",
                     util::StatusCodeToString(planned.status().code()));
        FinishRecord(record, stats, planned.status().code(), /*retries=*/0,
                     /*rows=*/0);
        return planned.status();
      }
      if (stats != nullptr) stats->plan_millis = plan_timer.ElapsedMillis();
      plan = std::make_shared<const sparql::Plan>(std::move(planned).value());
      PlanInsert(key, plan);
    }
  }

  // Execution proper, with bounded retry on transient (kUnavailable)
  // failures — including those injected via the `engine.execute`
  // failpoint. The cache lookups and planning above run exactly once per
  // logical Execute, so hit/miss counters are unaffected by retries.
  util::Result<sparql::ResultTable> executed = util::Status::Internal("");
  int attempt = 0;
  for (;; ++attempt) {
    util::Status fp = util::FailpointStatus("engine.execute");
    // Re-check the guard per attempt: a request cancelled or expired
    // while this loop slept (injected delay, retry backoff) must not
    // start another execution — the executor's own polling only fires
    // every few batches, too late for small queries.
    if (options.guard != nullptr) {
      if (util::Status st = options.guard->Check(); !st.ok()) {
        executed = st;
        break;
      }
    }
    if (!fp.ok()) {
      executed = fp;
    } else if (plan != nullptr) {
      executed = sparql::Execute(store_, query, *plan, options, stats);
    } else {
      executed = sparql::Execute(store_, query, options, stats);
    }
    if (executed.ok() || !executed.status().IsUnavailable() ||
        attempt >= config_.max_transient_retries) {
      break;
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
    metrics.retries.Inc();
    if (config_.retry_backoff_millis > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          config_.retry_backoff_millis << attempt));
    }
  }
  if (!executed.ok()) {
    span.SetAttr("status", util::StatusCodeToString(executed.status().code()));
    FinishRecord(record, stats, executed.status().code(), attempt, /*rows=*/0);
    return executed.status();
  }

  auto handle = std::make_shared<const sparql::ResultTable>(
      std::move(executed).value());
  if (use_result_cache) {
    ResultInsert(key, handle, record.rec().fingerprint);
  }
  metrics.miss_millis.Observe(timer.ElapsedMillis());
  span.SetAttr("rows", static_cast<uint64_t>(handle->rows().size()));
  span.SetAttr("status", "OK");
  FinishRecord(record, stats, util::StatusCode::kOk, attempt,
               handle->rows().size());
  return TableHandle(handle);
}

util::Result<TableHandle> QueryEngine::ExecuteText(
    std::string_view text, const sparql::ExecOptions& options,
    sparql::ExecStats* stats) {
  RE2X_ASSIGN_OR_RETURN(sparql::SelectQuery query, sparql::ParseQuery(text));
  return Execute(query, options, stats);
}

util::Status QueryEngine::SaveSnapshot(
    const std::string& path,
    const storage::SnapshotWriteOptions& options) const {
  return storage::SaveSnapshot(path, store_, /*text=*/nullptr,
                               /*vsg=*/nullptr, options);
}

util::Result<EngineSnapshot> QueryEngine::OpenSnapshot(
    const std::string& path, const storage::SnapshotLoadOptions& options,
    EngineConfig config) {
  RE2X_ASSIGN_OR_RETURN(storage::LoadedSnapshot data,
                        storage::LoadSnapshot(path, options));
  EngineSnapshot out;
  out.data = std::move(data);
  out.engine = std::make_unique<QueryEngine>(*out.data.store, config);
  return out;
}

}  // namespace re2xolap::engine
