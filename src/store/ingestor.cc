#include "store/ingestor.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <chrono>
#include <span>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rdf/delta_layer.h"
#include "rdf/ntriples.h"
#include "util/exec_guard.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace re2xolap::store {

using rdf::DeltaLayer;
using rdf::EncodedTriple;
using rdf::EpochChain;
using rdf::kInvalidTermId;
using rdf::Perm;
using rdf::TermId;
using util::ExecGuard;
using util::Result;
using util::Status;

Ingestor::Ingestor(rdf::TripleStore* store, util::ThreadPool* pool,
                   IngestorConfig config)
    : store_(store), pool_(pool), config_(config) {}

Ingestor::~Ingestor() {
  std::unique_lock<std::mutex> lk(compact_mu_);
  compact_cv_.wait(lk, [this] { return !compact_inflight_; });
}

bool Ingestor::compaction_inflight() const {
  std::lock_guard<std::mutex> lk(compact_mu_);
  return compact_inflight_;
}

Result<IngestReceipt> Ingestor::IngestText(std::string_view text, IngestOp op,
                                           const ExecGuard* guard) {
  RE2X_FAILPOINT("store.ingest");
  if (!store_->live()) {
    return Status::InvalidArgument("store is not in live mode");
  }
  if (guard != nullptr) {
    Status st = guard->Check();
    if (!st.ok()) return st;
  }
  obs::Span span(op == IngestOp::kInsert ? "store.ingest.insert"
                                         : "store.ingest.delete");
  std::vector<std::array<rdf::Term, 3>> stmts;
  Status parse = rdf::ParseNTriplesTerms(text, &stmts);
  if (!parse.ok()) return parse;
  if (guard != nullptr) {
    guard->ChargeRows(stmts.size());
    Status st = guard->Check();
    if (!st.ok()) return st;
  }
  span.SetAttr("statements", static_cast<uint64_t>(stmts.size()));

  std::shared_ptr<const EpochChain> next;
  IngestReceipt receipt;
  {
    std::lock_guard<std::mutex> lk(ingest_mu_);
    // The chain is stable under ingest_mu_: ingest and the compaction
    // publish step are the only writers, and both hold it.
    std::shared_ptr<const EpochChain> chain = store_->live_chain();
    rdf::Dictionary& dict = store_->dictionary();

    std::vector<EncodedTriple> batch;
    batch.reserve(stmts.size());
    if (op == IngestOp::kInsert) {
      for (const auto& t : stmts) {
        batch.push_back(EncodedTriple{dict.InternLive(t[0]),
                                      dict.InternLive(t[1]),
                                      dict.InternLive(t[2])});
      }
    } else {
      for (const auto& t : stmts) {
        // A statement with any unknown term cannot be visible: skip it
        // without interning (deletes must never grow the dictionary).
        const TermId s = dict.Lookup(t[0]);
        const TermId p = dict.Lookup(t[1]);
        const TermId o = dict.Lookup(t[2]);
        if (s == kInvalidTermId || p == kInvalidTermId ||
            o == kInvalidTermId) {
          continue;
        }
        batch.push_back(EncodedTriple{s, p, o});
      }
    }
    std::sort(batch.begin(), batch.end(), rdf::SpoLess());
    batch.erase(std::unique(batch.begin(), batch.end()), batch.end());

    // Visibility filter, establishing the delta-layer invariants: inserts
    // keep only not-yet-visible triples, deletes only visible ones. The
    // batch is SPO-sorted, so one merged SPO view probed in order serves
    // every lookup with galloping bounds.
    std::vector<EncodedTriple> final_batch;
    final_batch.reserve(batch.size());
    if (!batch.empty()) {
      rdf::IndexRange spo = store_->ChainPermutationRange(chain, Perm::kSpo);
      uint64_t from = 0;
      for (const EncodedTriple& t : batch) {
        from = spo.GallopLowerBound(from, t);
        const bool visible =
            from < spo.size() && !rdf::SpoLess()(t, spo[from]);
        if (visible == (op == IngestOp::kDelete)) final_batch.push_back(t);
      }
    }

    if (final_batch.empty()) {
      // No net effect: publish nothing, keep the epoch (and with it every
      // cached plan and result) untouched.
      receipt.epoch = chain->epoch;
      receipt.chain_depth = chain->depth();
      return receipt;
    }

    auto layer = std::make_shared<DeltaLayer>();
    layer->batch_id = ++batch_seq_;
    auto& spo_arr = op == IngestOp::kInsert ? layer->add_spo : layer->del_spo;
    auto& pos_arr = op == IngestOp::kInsert ? layer->add_pos : layer->del_pos;
    auto& osp_arr = op == IngestOp::kInsert ? layer->add_osp : layer->del_osp;
    spo_arr = std::move(final_batch);
    pos_arr = spo_arr;
    std::sort(pos_arr.begin(), pos_arr.end(), rdf::PosLess());
    osp_arr = spo_arr;
    std::sort(osp_arr.begin(), osp_arr.end(), rdf::OspLess());
    layer->RebuildPredicateDelta();

    auto fresh = std::make_shared<EpochChain>();
    fresh->base = chain->base;
    fresh->layers = chain->layers;
    fresh->layers.push_back(layer);
    fresh->epoch = chain->epoch + 1;
    fresh->stats = chain->stats;
    rdf::ApplyLayerToStats(*layer, &fresh->stats);
    fresh->visible_triples =
        chain->visible_triples + layer->add_count() - layer->del_count();
    fresh->delta_adds = chain->delta_adds + layer->add_count();
    fresh->delta_dels = chain->delta_dels + layer->del_count();

    receipt.epoch = fresh->epoch;
    receipt.added = layer->add_count();
    receipt.deleted = layer->del_count();
    receipt.chain_depth = fresh->depth();
    next = fresh;
    store_->PublishChain(next);
  }

  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("store.delta.ingest.batches").Inc();
  reg.GetCounter("store.delta.ingest.triples").Inc(receipt.added);
  reg.GetCounter("store.delta.ingest.deletes").Inc(receipt.deleted);
  MaybeScheduleCompaction(*next);
  return receipt;
}

void Ingestor::MaybeScheduleCompaction(const EpochChain& chain) {
  if (!config_.auto_compact || pool_ == nullptr) return;
  const bool depth_due = config_.compact_threshold_layers != 0 &&
                         chain.depth() >= config_.compact_threshold_layers;
  const bool size_due =
      config_.compact_threshold_triples != 0 &&
      chain.delta_adds + chain.delta_dels >= config_.compact_threshold_triples;
  if (!depth_due && !size_due) return;
  {
    std::lock_guard<std::mutex> lk(compact_mu_);
    if (compact_inflight_) return;
    compact_inflight_ = true;
  }
  // A workerless pool runs the task inline on this thread; CompactNow
  // takes ingest_mu_, which is why this is never called while holding it.
  pool_->Submit([this] {
    Status st = BackgroundCompact();
    if (!st.ok()) {
      obs::MetricsRegistry::Global()
          .GetCounter("store.delta.compact_failures")
          .Inc();
    }
    std::lock_guard<std::mutex> lk(compact_mu_);
    compact_inflight_ = false;
    compact_cv_.notify_all();
  });
}

util::Status Ingestor::BackgroundCompact() {
  RE2X_FAILPOINT("store.compact");
  // Serial merge: this already runs ON a pool worker, and ParallelFor
  // from inside a worker deadlocks when no other worker is free (the
  // helper task would wait behind this very compaction).
  return CompactNow(nullptr, /*merge_pool=*/nullptr);
}

util::Status Ingestor::Compact(const ExecGuard* guard) {
  RE2X_FAILPOINT("store.compact");
  std::unique_lock<std::mutex> lk(compact_mu_);
  compact_cv_.wait(lk, [this] { return !compact_inflight_; });
  compact_inflight_ = true;
  lk.unlock();
  Status st = CompactNow(guard, pool_);
  lk.lock();
  compact_inflight_ = false;
  compact_cv_.notify_all();
  lk.unlock();
  return st;
}

util::Status Ingestor::CompactNow(const ExecGuard* guard,
                                  util::ThreadPool* merge_pool) {
  const auto started = std::chrono::steady_clock::now();
  std::shared_ptr<const EpochChain> snap;
  {
    std::lock_guard<std::mutex> lk(ingest_mu_);
    snap = store_->live_chain();
  }
  if (snap == nullptr) {
    return Status::InvalidArgument("store is not in live mode");
  }
  if (snap->layers.empty()) return Status::OK();
  obs::Span span("store.compact");
  span.SetAttr("layers", snap->depth());
  span.SetAttr("delta_triples", snap->delta_adds + snap->delta_dels);

  // Fold the snapshotted chain into fresh owned arrays, one permutation
  // at a time. The merged view already annihilates tombstones, so a plain
  // sequential drain of each permutation IS the fold. No lock is held:
  // ingest keeps publishing on top, and readers keep serving whichever
  // chain they pinned.
  auto base = std::make_shared<rdf::LiveBase>();
  std::array<Status, 3> merge_status;
  auto merge_one = [&](size_t i) {
    const Perm perm = static_cast<Perm>(i);
    std::vector<EncodedTriple>& out = perm == Perm::kSpo   ? base->spo
                                      : perm == Perm::kPos ? base->pos
                                                           : base->osp;
    rdf::IndexRange range = store_->ChainPermutationRange(snap, perm);
    out.reserve(range.size());
    rdf::IndexCursor cur(range);
    while (!cur.done()) {
      std::span<const EncodedTriple> chunk = cur.NextChunk(4096);
      out.insert(out.end(), chunk.begin(), chunk.end());
      if (guard != nullptr) {
        Status st = guard->Check();
        if (!st.ok()) {
          merge_status[i] = st;
          return;
        }
      }
    }
  };
  if (merge_pool != nullptr && merge_pool->size() > 0) {
    merge_pool->ParallelFor(3, merge_one);
  } else {
    for (size_t i = 0; i < 3; ++i) merge_one(i);
  }
  for (const Status& st : merge_status) {
    if (!st.ok()) return st;
  }
  base->stats = rdf::ComputePredicateStats(base->pos, merge_pool);

  {
    std::lock_guard<std::mutex> lk(ingest_mu_);
    std::shared_ptr<const EpochChain> cur_chain = store_->live_chain();
    // Layers are append-only and compactions are serialized, so the
    // current chain starts with exactly the layers the snapshot folded.
    assert(cur_chain->layers.size() >= snap->layers.size());
    auto fresh = std::make_shared<EpochChain>();
    fresh->base = base;
    fresh->layers.assign(cur_chain->layers.begin() + snap->layers.size(),
                         cur_chain->layers.end());
    fresh->epoch = cur_chain->epoch + 1;
    fresh->stats = base->stats;
    for (const std::shared_ptr<const DeltaLayer>& layer : fresh->layers) {
      rdf::ApplyLayerToStats(*layer, &fresh->stats);
      fresh->delta_adds += layer->add_count();
      fresh->delta_dels += layer->del_count();
    }
    fresh->visible_triples = cur_chain->visible_triples;
    store_->PublishChain(std::move(fresh));
  }

  const double millis =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started)
          .count();
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("store.delta.compactions").Inc();
  reg.GetHistogram("store.delta.compact_millis").Observe(millis);
  return Status::OK();
}

}  // namespace re2xolap::store
