#ifndef RE2XOLAP_STORE_INGESTOR_H_
#define RE2XOLAP_STORE_INGESTOR_H_

// Live ingestion driver for an epoch-chain TripleStore (ROADMAP item 3).
//
// The Ingestor owns the write side of a live store: it parses N-Triples
// batches, interns new terms through the dictionary's live path, seals
// each batch into an immutable rdf::DeltaLayer, and publishes a new
// EpochChain atomically — readers never see a half-applied batch, and a
// query pinned to the previous chain keeps serving it untouched. When the
// chain grows past the configured thresholds a background compaction task
// (on util::ThreadPool) folds base + sealed layers into a fresh sorted
// base and publishes a depth-0 (or shallower) chain, again atomically and
// without ever blocking readers or ingest.
//
// Concurrency: IngestText() and the publish step of compaction serialize
// on one mutex; the expensive compaction merge runs outside it. All reads
// (queries) are lock-free against both.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>

#include "rdf/triple_store.h"
#include "util/result.h"
#include "util/status.h"

namespace re2xolap::util {
class ExecGuard;
class ThreadPool;
}  // namespace re2xolap::util

namespace re2xolap::store {

/// What one ingest batch does with its statements.
enum class IngestOp : uint8_t {
  kInsert = 0,
  kDelete = 1,
};

struct IngestorConfig {
  /// Fold the chain once the layers hold this many delta triples
  /// (inserts + tombstones) in total. 0 disables the size trigger.
  uint64_t compact_threshold_triples = 64 * 1024;
  /// Fold the chain once it is this many layers deep. 0 disables the
  /// depth trigger.
  uint64_t compact_threshold_layers = 4;
  /// Schedule compaction automatically after a publish that crosses a
  /// threshold. Explicit Compact() always works regardless.
  bool auto_compact = true;
};

/// What an accepted batch did to the store.
struct IngestReceipt {
  /// Epoch the batch is visible at (the pre-batch epoch when the batch
  /// was a no-op and nothing was published).
  uint64_t epoch = 0;
  /// Triples actually inserted (after dedup and already-visible drops).
  uint64_t added = 0;
  /// Triples actually deleted (after dedup and not-visible drops).
  uint64_t deleted = 0;
  /// Chain depth after the batch.
  uint64_t chain_depth = 0;
};

class Ingestor {
 public:
  /// `store` must outlive the Ingestor and be live (TripleStore::
  /// EnterLive()) before the first IngestText(). `pool` runs background
  /// compactions and parallelizes the compaction merge; it may be null
  /// (no auto-compaction, serial explicit Compact()).
  Ingestor(rdf::TripleStore* store, util::ThreadPool* pool,
           IngestorConfig config = {});
  /// Blocks until any in-flight background compaction finishes.
  ~Ingestor();

  Ingestor(const Ingestor&) = delete;
  Ingestor& operator=(const Ingestor&) = delete;

  /// Applies one batch of N-Triples statements (rdf::ParseNTriples
  /// grammar) as inserts or deletes. Set semantics: duplicate statements
  /// collapse, inserting a visible triple is a no-op, deleting an absent
  /// one is a no-op; a batch whose effect is empty publishes nothing (the
  /// epoch does not move, caches stay warm). `guard` is polled at parse
  /// and encode boundaries; a tripped guard rejects the batch before
  /// publication (batches are all-or-nothing). Failpoint: store.ingest.
  util::Result<IngestReceipt> IngestText(std::string_view text, IngestOp op,
                                         const util::ExecGuard* guard);

  /// Folds the current chain's layers into a fresh compacted base and
  /// publishes it (visible data unchanged, epoch bumped). Runs on the
  /// calling thread; waits first for any in-flight background compaction.
  /// No-op on a depth-0 chain. Failpoint: store.compact.
  util::Status Compact(const util::ExecGuard* guard = nullptr);

  /// True while a background compaction is running (tests, /healthz).
  bool compaction_inflight() const;

  const IngestorConfig& config() const { return config_; }

 private:
  /// The compaction body: snapshot the chain, merge outside the locks,
  /// publish under the ingest mutex. Caller owns the inflight flag.
  /// `merge_pool` parallelizes the fold; it must be null when the caller
  /// already runs on a pool worker (BackgroundCompact) — a nested
  /// ParallelFor would wait behind its own occupied worker.
  util::Status CompactNow(const util::ExecGuard* guard,
                          util::ThreadPool* merge_pool);
  util::Status BackgroundCompact();
  /// Schedules a background compaction when `chain` crosses a threshold
  /// and none is running. Must NOT be called with ingest_mu_ held (a
  /// workerless pool runs the task inline, and CompactNow relocks).
  void MaybeScheduleCompaction(const rdf::EpochChain& chain);

  rdf::TripleStore* store_;
  util::ThreadPool* pool_;
  IngestorConfig config_;

  /// Serializes batch application and chain publication (ingest and the
  /// compaction publish step). Never held during the compaction merge.
  std::mutex ingest_mu_;
  uint64_t batch_seq_ = 0;

  mutable std::mutex compact_mu_;
  std::condition_variable compact_cv_;
  bool compact_inflight_ = false;
};

}  // namespace re2xolap::store

#endif  // RE2XOLAP_STORE_INGESTOR_H_
