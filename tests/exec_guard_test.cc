#include "util/exec_guard.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace re2xolap::util {
namespace {

obs::Counter& GuardCounter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name);
}

TEST(ExecGuardTest, DefaultGuardIsUnlimited) {
  ExecGuard guard;
  EXPECT_TRUE(guard.Check().ok());
  EXPECT_TRUE(guard.CheckBudgets().ok());
  EXPECT_FALSE(guard.has_deadline());
  EXPECT_FALSE(guard.expired());
  EXPECT_EQ(guard.remaining_millis(), UINT64_MAX);
  // Charging without limits is a no-op (no budget to enforce).
  guard.ChargeBytes(1 << 20);
  guard.ChargeRows(1000);
  EXPECT_TRUE(guard.Check().ok());
}

TEST(ExecGuardTest, ExpiredDeadlineReturnsTimeout) {
  ExecGuard guard = ExecGuard::WithDeadline(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Status st = guard.Check();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsTimeout()) << st.ToString();
  EXPECT_TRUE(guard.expired());
  EXPECT_EQ(guard.remaining_millis(), 0u);
}

TEST(ExecGuardTest, GenerousDeadlinePasses) {
  ExecGuard guard = ExecGuard::WithDeadline(60 * 1000);
  EXPECT_TRUE(guard.Check().ok());
  EXPECT_TRUE(guard.has_deadline());
  EXPECT_GT(guard.remaining_millis(), 0u);
  EXPECT_FALSE(guard.expired());
}

TEST(ExecGuardTest, ArrivalAnchoredDeadlineChargesQueueWait) {
  // A request that waited in an admission queue longer than its whole
  // deadline must fail its FIRST Check(): the deadline anchors at
  // arrival, not at execution start.
  const auto arrival =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(50);
  ExecGuard guard = ExecGuard::WithDeadlineAt(20, arrival);
  Status st = guard.Check();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsTimeout()) << st.ToString();
  EXPECT_TRUE(guard.expired());
  EXPECT_EQ(guard.remaining_millis(), 0u);
}

TEST(ExecGuardTest, ArrivalAnchoredDeadlineSpendsPartOfTheBudget) {
  // Queue wait below the deadline leaves only the remainder: a 10s
  // budget anchored 2s in the past has well under 10s left.
  const auto arrival =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(2000);
  ExecGuard guard = ExecGuard::WithDeadlineAt(10'000, arrival);
  EXPECT_TRUE(guard.Check().ok());
  EXPECT_TRUE(guard.has_deadline());
  EXPECT_LE(guard.remaining_millis(), 8'000u);
  EXPECT_GT(guard.remaining_millis(), 0u);
}

TEST(ExecGuardTest, ArrivalAnchoredConstructorKeepsBudgetsAndToken) {
  CancellationToken token;
  ExecGuard::Limits limits;
  limits.deadline_millis = 60'000;
  limits.max_rows = 10;
  ExecGuard guard(limits, std::chrono::steady_clock::now(), &token);
  EXPECT_TRUE(guard.Check().ok());
  guard.ChargeRows(11);
  EXPECT_TRUE(guard.Check().IsResourceExhausted());
  token.Cancel();
  EXPECT_TRUE(guard.Check().IsCancelled());
}

TEST(ExecGuardTest, ByteBudgetViolationIsResourceExhausted) {
  ExecGuard::Limits limits;
  limits.max_bytes = 100;
  ExecGuard guard(limits);
  guard.ChargeBytes(60);
  EXPECT_TRUE(guard.CheckBudgets().ok());
  guard.ChargeBytes(60);
  Status st = guard.CheckBudgets();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_EQ(guard.charged_bytes(), 120u);
  // Check() reports the same violation.
  EXPECT_TRUE(guard.Check().IsResourceExhausted());
}

TEST(ExecGuardTest, RowBudgetViolationIsResourceExhausted) {
  ExecGuard::Limits limits;
  limits.max_rows = 10;
  ExecGuard guard(limits);
  guard.ChargeRows(10);
  EXPECT_TRUE(guard.CheckBudgets().ok());  // at the limit, not beyond
  guard.ChargeRows(1);
  EXPECT_TRUE(guard.CheckBudgets().IsResourceExhausted());
}

TEST(ExecGuardTest, CancellationWinsOverDeadline) {
  CancellationToken token;
  ExecGuard::Limits limits;
  limits.deadline_millis = 1;
  ExecGuard guard(limits, &token);
  token.Cancel();
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  // Both tripped; cancellation is checked first.
  Status st = guard.Check();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
}

TEST(ExecGuardTest, ViolationMetricsCountOncePerGuard) {
  obs::Counter& timeouts = GuardCounter("guard.timeouts");
  obs::Counter& budget_aborts = GuardCounter("guard.budget_aborts");
  const uint64_t timeouts_before = timeouts.value();
  const uint64_t budget_before = budget_aborts.value();

  ExecGuard guard = ExecGuard::WithDeadline(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(guard.Check().ok());
  EXPECT_EQ(timeouts.value(), timeouts_before + 1);

  ExecGuard::Limits limits;
  limits.max_bytes = 1;
  ExecGuard budget_guard(limits);
  budget_guard.ChargeBytes(10);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(budget_guard.CheckBudgets().ok());
  }
  EXPECT_EQ(budget_aborts.value(), budget_before + 1);
}

TEST(ExecGuardTest, ConcurrentChargingIsExact) {
  ExecGuard::Limits limits;
  limits.max_rows = 1u << 30;  // large enough to never trip
  ExecGuard guard(limits);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&guard] {
      for (int i = 0; i < kPerThread; ++i) guard.ChargeRows(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(guard.charged_rows(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_TRUE(guard.Check().ok());
}

TEST(ExecGuardTest, MoveTransfersLimitsAndCharges) {
  ExecGuard::Limits limits;
  limits.max_bytes = 50;
  ExecGuard guard(limits);
  guard.ChargeBytes(100);
  ExecGuard moved = std::move(guard);
  EXPECT_EQ(moved.charged_bytes(), 100u);
  EXPECT_TRUE(moved.CheckBudgets().IsResourceExhausted());
}

TEST(CancellationTokenTest, ReleaseAcquireMakesPriorWritesVisible) {
  // The documented contract: data written before Cancel() is visible to
  // any thread that observes cancelled() == true.
  CancellationToken token;
  std::string reason;
  std::thread canceller([&] {
    reason = "user pressed ^C";
    token.Cancel();
  });
  while (!token.cancelled()) std::this_thread::yield();
  EXPECT_EQ(reason, "user pressed ^C");
  canceller.join();
  token.Reset();
  EXPECT_FALSE(token.cancelled());
}

}  // namespace
}  // namespace re2xolap::util
