#include <gtest/gtest.h>

#include "core/session.h"
#include "core/sparqlbye_baseline.h"
#include "obs/trace.h"
#include "tests/json_validator.h"
#include "tests/test_data.h"

namespace re2xolap::core {
namespace {

using re2xolap::testing::BuildFigure1Store;
using re2xolap::testing::kObsClass;

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store = BuildFigure1Store();
    auto r = VirtualSchemaGraph::Build(*store, kObsClass);
    ASSERT_TRUE(r.ok());
    vsg = std::make_unique<VirtualSchemaGraph>(std::move(r).value());
    text = std::make_unique<rdf::TextIndex>(*store);
    session = std::make_unique<Session>(store.get(), vsg.get(), text.get());
  }
  std::unique_ptr<rdf::TripleStore> store;
  std::unique_ptr<VirtualSchemaGraph> vsg;
  std::unique_ptr<rdf::TextIndex> text;
  std::unique_ptr<Session> session;
};

TEST_F(SessionTest, FullAlgorithmTwoWorkflow) {
  // Algorithm 2: synthesize, pick, execute, refine, pick, execute...
  auto candidates = session->Start({"Germany", "2014"});
  ASSERT_TRUE(candidates.ok());
  ASSERT_EQ(candidates->size(), 1u);
  ASSERT_TRUE(session->PickCandidate(0).ok());

  auto t1 = session->Execute();
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ((*t1)->row_count(), 3u);
  // The session caches one table at a time; copy what we compare later.
  const size_t t1_cols = (*t1)->column_count();

  auto dis = session->Refine(RefinementKind::kDisaggregate);
  ASSERT_TRUE(dis.ok());
  ASSERT_FALSE(dis->empty());
  ASSERT_TRUE(session->PickRefinement(0).ok());

  auto t2 = session->Execute();
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ((*t2)->column_count(), t1_cols + 1);
  const size_t t2_rows = (*t2)->row_count();

  auto topk = session->Refine(RefinementKind::kTopK);
  ASSERT_TRUE(topk.ok());
  if (!topk->empty()) {
    ASSERT_TRUE(session->PickRefinement(0).ok());
    auto t3 = session->Execute();
    ASSERT_TRUE(t3.ok());
    EXPECT_LE((*t3)->row_count(), t2_rows);
  }
}

TEST_F(SessionTest, BackRestoresPreviousState) {
  ASSERT_TRUE(session->Start({"Germany"}).ok());
  ASSERT_TRUE(session->PickCandidate(0).ok());
  std::string desc0 = session->current().description;
  auto dis = session->Refine(RefinementKind::kDisaggregate);
  ASSERT_TRUE(dis.ok());
  ASSERT_TRUE(session->PickRefinement(0).ok());
  EXPECT_NE(session->current().description, desc0);
  session->Back();
  EXPECT_EQ(session->current().description, desc0);
  session->Back();  // no-op at root
  EXPECT_EQ(session->current().description, desc0);
}

TEST_F(SessionTest, StatsAccumulate) {
  ASSERT_TRUE(session->Start({"Germany"}).ok());
  ASSERT_TRUE(session->PickCandidate(0).ok());
  ASSERT_TRUE(session->Execute().ok());
  auto dis = session->Refine(RefinementKind::kDisaggregate);
  ASSERT_TRUE(dis.ok());
  const ExplorationStats& st = session->stats();
  EXPECT_EQ(st.interactions, 2u);  // Start + Refine
  EXPECT_EQ(st.cumulative_paths, 1u + dis->size());
  EXPECT_GT(st.cumulative_tuples, 0u);
}

TEST_F(SessionTest, ErrorsOnMissingState) {
  EXPECT_FALSE(session->Execute().ok());
  EXPECT_FALSE(session->Refine(RefinementKind::kTopK).ok());
  EXPECT_FALSE(session->PickCandidate(0).ok());
  ASSERT_TRUE(session->Start({"Germany"}).ok());
  EXPECT_FALSE(session->PickCandidate(5).ok());
  ASSERT_TRUE(session->PickCandidate(0).ok());
  EXPECT_FALSE(session->PickRefinement(0).ok());
}

TEST_F(SessionTest, SimilarityAndPercentileRefinements) {
  ASSERT_TRUE(session->Start({"Syria"}).ok());
  ASSERT_TRUE(session->PickCandidate(0).ok());
  auto sim = session->Refine(RefinementKind::kSimilarity);
  ASSERT_TRUE(sim.ok());
  EXPECT_FALSE(sim->empty());
  auto perc = session->Refine(RefinementKind::kPercentile);
  ASSERT_TRUE(perc.ok());
  EXPECT_FALSE(perc->empty());
}

TEST_F(SessionTest, RefinementKindNames) {
  EXPECT_STREQ(RefinementKindName(RefinementKind::kDisaggregate),
               "Disaggregate");
  EXPECT_STREQ(RefinementKindName(RefinementKind::kTopK), "TopK");
  EXPECT_STREQ(RefinementKindName(RefinementKind::kPercentile), "Percentile");
  EXPECT_STREQ(RefinementKindName(RefinementKind::kSimilarity), "Similarity");
}

// --- SPARQLByE baseline (Figure 10) -------------------------------------------

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store = BuildFigure1Store();
    text = std::make_unique<rdf::TextIndex>(*store);
    baseline = std::make_unique<SparqlByEBaseline>(store.get(), text.get());
  }
  std::unique_ptr<rdf::TripleStore> store;
  std::unique_ptr<rdf::TextIndex> text;
  std::unique_ptr<SparqlByEBaseline> baseline;
};

TEST_F(BaselineTest, ProducesMinimalBgpWithoutAggregates) {
  auto q = baseline->Synthesize({"Asia", "2014"});
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->select_all);
  EXPECT_FALSE(q->has_aggregates());
  EXPECT_TRUE(q->group_by.empty());
  // Figure 10a: patterns describe the two entities but never mention any
  // observation or measure predicate.
  std::string text_q = sparql::ToSparql(*q);
  EXPECT_EQ(text_q.find("numApplicants"), std::string::npos);
  EXPECT_EQ(text_q.find("GROUP BY"), std::string::npos);
}

TEST_F(BaselineTest, PatternsAreDisconnectedAcrossValues) {
  auto q = baseline->Synthesize({"Asia", "2014"});
  ASSERT_TRUE(q.ok());
  // Variables of value 0 patterns all start with x0; value 1 with x1 —
  // no shared variable connects them.
  bool has_x0 = false, has_x1 = false;
  for (const auto& p : q->patterns) {
    if (sparql::IsVar(p.s)) {
      const std::string& n = sparql::AsVar(p.s).name;
      has_x0 |= n.rfind("x0", 0) == 0;
      has_x1 |= n.rfind("x1", 0) == 0;
    }
  }
  EXPECT_TRUE(has_x0);
  EXPECT_TRUE(has_x1);
}

TEST_F(BaselineTest, FailsOnUnknownValue) {
  EXPECT_FALSE(baseline->Synthesize({"Narnia"}).ok());
  EXPECT_FALSE(baseline->Synthesize({}).ok());
}

TEST_F(BaselineTest, BaselineQueryExecutes) {
  auto q = baseline->Synthesize({"Syria"});
  ASSERT_TRUE(q.ok());
  auto r = sparql::Execute(*store, *q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r->row_count(), 1u);
}

TEST_F(SessionTest, ObservabilityStatsAndCapturedTrace) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.SetEnabled(true);

  auto candidates = session->Start({"Germany", "2014"});
  ASSERT_TRUE(candidates.ok());
  ASSERT_TRUE(session->PickCandidate(0).ok());
  ASSERT_TRUE(session->Execute().ok());
  auto dis = session->Refine(RefinementKind::kDisaggregate);
  ASSERT_TRUE(dis.ok());
  tracer.SetEnabled(false);

  // Execution statistics flow from the executor into the session stats.
  const ExplorationStats& st = session->stats();
  EXPECT_EQ(st.interactions, 2u);  // Start + Refine
  EXPECT_EQ(st.interaction_latency_millis.size(), st.interactions);
  for (double ms : st.interaction_latency_millis) EXPECT_GT(ms, 0.0);
  EXPECT_GT(st.cumulative_exec_millis, 0.0);
  EXPECT_GT(st.cumulative_triples_scanned, 0u);
  EXPECT_GT(st.cumulative_intermediate_bindings, 0u);
  // The last executed query left its per-operator tree behind.
  EXPECT_GT(session->last_exec_stats().profile.NodeCount(), 1u);

  // The captured session trace is valid Chrome trace_event JSON and
  // contains the interaction spans.
  std::string json = tracer.ChromeTraceJson();
  std::string error;
  EXPECT_TRUE(re2xolap::testing::IsValidJson(json, &error)) << error;
  EXPECT_NE(json.find("session.start"), std::string::npos);
  EXPECT_NE(json.find("reolap.synthesize"), std::string::npos);
  EXPECT_NE(json.find("session.execute"), std::string::npos);
  EXPECT_NE(json.find("sparql.execute"), std::string::npos);
  tracer.Clear();
}

TEST_F(SessionTest, LatencyListTracksEveryInteractionKind) {
  auto candidates = session->Start({"Germany", "2014"});
  ASSERT_TRUE(candidates.ok());
  ASSERT_TRUE(session->PickCandidate(0).ok());
  ASSERT_TRUE(session->Slice(0).ok());
  const ExplorationStats& st = session->stats();
  EXPECT_EQ(st.interactions, 2u);  // Start + Slice
  EXPECT_EQ(st.interaction_latency_millis.size(), st.interactions);
}

}  // namespace
}  // namespace re2xolap::core
