#include <sstream>

#include <gtest/gtest.h>

#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

namespace re2xolap::util {
namespace {

// --- Status -------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::ParseError("x"), Status::ParseError("x"));
  EXPECT_FALSE(Status::ParseError("x") == Status::ParseError("y"));
  EXPECT_FALSE(Status::ParseError("x") == Status::Internal("x"));
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::Timeout("too slow");
  EXPECT_EQ(os.str(), "Timeout: too slow");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kParseError,
        StatusCode::kTypeError, StatusCode::kExecutionError,
        StatusCode::kTimeout, StatusCode::kResourceExhausted,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(c), "Unknown");
  }
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Caller(int x) {
  RE2X_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Caller(1).ok());
  EXPECT_TRUE(Caller(-1).IsInvalidArgument());
}

// --- Result ---------------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  RE2X_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(ResultTest, ValueOrFallsBackOnError) {
  Result<int> err = Status::NotFound("nope");
  EXPECT_EQ(err.value_or(42), 42);
  Result<int> ok = 7;
  EXPECT_EQ(ok.value_or(42), 7);
}

TEST(ResultDeathTest, ValueAccessOnErrorAborts) {
  Result<int> err = Status::NotFound("missing row");
  EXPECT_DEATH_IF_SUPPORTED((void)err.value(), "value\\(\\) accessed");
  EXPECT_DEATH_IF_SUPPORTED((void)*err, "missing row");
}

TEST(ResultDeathTest, ExpectNamesTheCallerOnAbort) {
  Result<int> err = Status::Internal("disk gone");
  EXPECT_DEATH_IF_SUPPORTED((void)err.expect("loading schema"),
                            "loading schema");
}

// --- string utils ------------------------------------------------------------------

TEST(StringUtilsTest, ToLower) {
  EXPECT_EQ(ToLower("HeLLo 123"), "hello 123");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilsTest, Trim) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\nx"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilsTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
}

TEST(StringUtilsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(StringUtilsTest, ContainsIgnoreCase) {
  EXPECT_TRUE(ContainsIgnoreCase("October 2014", "october"));
  EXPECT_TRUE(ContainsIgnoreCase("October 2014", "2014"));
  EXPECT_FALSE(ContainsIgnoreCase("October 2014", "november"));
  EXPECT_TRUE(ContainsIgnoreCase("anything", ""));
}

TEST(StringUtilsTest, TokenizeWords) {
  EXPECT_EQ(TokenizeWords("October 2014"),
            (std::vector<std::string>{"october", "2014"}));
  EXPECT_EQ(TokenizeWords("Bosnia-Herzegovina (BA)"),
            (std::vector<std::string>{"bosnia", "herzegovina", "ba"}));
  EXPECT_TRUE(TokenizeWords("  .,;  ").empty());
}

TEST(StringUtilsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(2.5), "2.5");
  EXPECT_EQ(FormatDouble(0.125), "0.125");
}

// --- RNG ----------------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, SkewedFavorsSmallIndices) {
  Rng rng(2);
  int small = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Skewed(100) < 25) ++small;
  }
  // P(u^2 * 100 < 25) = P(u < 0.5) = 0.5, vs 0.25 for uniform.
  EXPECT_GT(small, n / 3);
}

// --- TablePrinter --------------------------------------------------------------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter p({"name", "value"});
  p.AddRow({"x", "1"});
  p.AddRow({"longer-name", "22"});
  std::ostringstream os;
  p.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 22    |"), std::string::npos);
  EXPECT_EQ(p.row_count(), 2u);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter p({"a", "b", "c"});
  p.AddRow({"1"});
  std::ostringstream os;
  p.Print(os);
  EXPECT_NE(os.str().find("| 1 |"), std::string::npos);
}

}  // namespace
}  // namespace re2xolap::util
