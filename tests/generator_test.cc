#include <gtest/gtest.h>

#include "qb/datasets.h"
#include "qb/generator.h"

namespace re2xolap::qb {
namespace {

TEST(SpecTest, EurostatTable3Shape) {
  DatasetSpec spec = EurostatSpec(1000);
  EXPECT_EQ(spec.dimension_count(), 4u);
  EXPECT_EQ(spec.measure_count(), 1u);
  EXPECT_EQ(spec.level_count(), 10u);
  EXPECT_EQ(spec.hierarchy_count(), 7u);
  EXPECT_EQ(spec.total_members(), 373u);  // the paper's |N_D|
}

TEST(SpecTest, ProductionTable3Shape) {
  DatasetSpec spec = ProductionSpec(1000);
  EXPECT_EQ(spec.dimension_count(), 7u);
  EXPECT_EQ(spec.measure_count(), 1u);
  EXPECT_EQ(spec.level_count(), 10u);
  EXPECT_EQ(spec.total_members(), 6444u);  // the paper's |N_D|
}

TEST(SpecTest, DbpediaTable3Shape) {
  DatasetSpec spec = DbpediaSpec(1000);
  EXPECT_EQ(spec.dimension_count(), 5u);
  EXPECT_EQ(spec.measure_count(), 1u);
  EXPECT_EQ(spec.level_count(), 24u);
  EXPECT_EQ(spec.total_members(), 87160u);  // the paper's |N_D|
}

TEST(GeneratorTest, ObservationCountHonored) {
  auto ds = Generate(EurostatSpec(500));
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  rdf::TermId cls =
      ds->store->Lookup(rdf::Term::Iri(ds->spec.observation_class));
  rdf::TermId type = ds->store->Lookup(rdf::Term::Iri(kRdfType));
  ASSERT_NE(cls, rdf::kInvalidTermId);
  EXPECT_EQ(ds->store->CountMatches({rdf::kInvalidTermId, type, cls}), 500u);
}

TEST(GeneratorTest, EveryObservationHasAllDimensionsAndMeasure) {
  auto ds = Generate(EurostatSpec(50));
  ASSERT_TRUE(ds.ok());
  const rdf::TripleStore& s = *ds->store;
  rdf::TermId type = s.Lookup(rdf::Term::Iri(kRdfType));
  rdf::TermId cls = s.Lookup(rdf::Term::Iri(ds->spec.observation_class));
  for (const rdf::EncodedTriple& t :
       s.Match({rdf::kInvalidTermId, type, cls})) {
    for (const DimensionSpec& d : ds->spec.dimensions) {
      rdf::TermId p = s.Lookup(rdf::Term::Iri(ds->spec.iri_base + d.predicate));
      ASSERT_NE(p, rdf::kInvalidTermId);
      EXPECT_EQ(s.CountMatches({t.s, p, rdf::kInvalidTermId}), 1u);
    }
    rdf::TermId m = s.Lookup(
        rdf::Term::Iri(ds->spec.iri_base + ds->spec.measure_predicates[0]));
    EXPECT_EQ(s.CountMatches({t.s, m, rdf::kInvalidTermId}), 1u);
  }
}

TEST(GeneratorTest, MembersCarryLabels) {
  auto ds = Generate(EurostatSpec(50));
  ASSERT_TRUE(ds.ok());
  const rdf::TripleStore& s = *ds->store;
  rdf::TermId label = s.Lookup(rdf::Term::Iri(kHasLabel));
  ASSERT_NE(label, rdf::kInvalidTermId);
  // "Germany" appears as a label of both an origin and a destination member.
  rdf::TermId germany = s.Lookup(rdf::Term::StringLiteral("Germany"));
  ASSERT_NE(germany, rdf::kInvalidTermId);
  EXPECT_EQ(s.CountMatches({rdf::kInvalidTermId, label, germany}), 2u);
}

TEST(GeneratorTest, HierarchyEdgesRespectParentOf) {
  auto ds = Generate(EurostatSpec(50));
  ASSERT_TRUE(ds.ok());
  const rdf::TripleStore& s = *ds->store;
  // Syria (origin index 33) must be in continent index 1 (Asia).
  rdf::TermId syria =
      s.Lookup(rdf::Term::Iri(ds->MemberIri("countryOrigin", 33)));
  rdf::TermId asia =
      s.Lookup(rdf::Term::Iri(ds->MemberIri("continentOrigin", 1)));
  rdf::TermId in_continent =
      s.Lookup(rdf::Term::Iri(ds->spec.iri_base + "inContinent"));
  ASSERT_NE(syria, rdf::kInvalidTermId);
  ASSERT_NE(asia, rdf::kInvalidTermId);
  EXPECT_TRUE(s.Exists({syria, in_continent, asia}));
}

TEST(GeneratorTest, MonthsMapToYears) {
  auto ds = Generate(EurostatSpec(10));
  const rdf::TripleStore& s = *ds->store;
  rdf::TermId in_year = s.Lookup(rdf::Term::Iri(ds->spec.iri_base + "inYear"));
  // Month 13 (February 2011) -> year index 1 (2011).
  rdf::TermId feb11 = s.Lookup(rdf::Term::Iri(ds->MemberIri("month", 13)));
  rdf::TermId y2011 = s.Lookup(rdf::Term::Iri(ds->MemberIri("year", 1)));
  EXPECT_TRUE(s.Exists({feb11, in_year, y2011}));
}

TEST(GeneratorTest, MToNHierarchiesProduceMultipleParents) {
  auto ds = Generate(DbpediaSpec(100));
  ASSERT_TRUE(ds.ok());
  const rdf::TripleStore& s = *ds->store;
  rdf::TermId sub = s.Lookup(rdf::Term::Iri(ds->spec.iri_base + "subGenreOf"));
  ASSERT_NE(sub, rdf::kInvalidTermId);
  rdf::TermId genre0 = s.Lookup(rdf::Term::Iri(ds->MemberIri("genre", 0)));
  EXPECT_EQ(s.CountMatches({genre0, sub, rdf::kInvalidTermId}), 2u);
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  auto a = Generate(EurostatSpec(100, 7));
  auto b = Generate(EurostatSpec(100, 7));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->store->size(), b->store->size());
  // Compare a few sampled triples via the canonical SPO order.
  auto sa = a->store->Match({});
  auto sb = b->store->Match({});
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); i += 997) {
    EXPECT_EQ(a->store->term(sa[i].s).value, b->store->term(sb[i].s).value);
    EXPECT_EQ(a->store->term(sa[i].o).value, b->store->term(sb[i].o).value);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  auto a = Generate(EurostatSpec(100, 7));
  auto b = Generate(EurostatSpec(100, 8));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Observation assignments should differ somewhere.
  bool differ = false;
  auto sa = a->store->Match({});
  auto sb = b->store->Match({});
  for (size_t i = 0; i < std::min(sa.size(), sb.size()) && !differ; ++i) {
    differ = !(a->store->term(sa[i].s).value == b->store->term(sb[i].s).value &&
               a->store->term(sa[i].o).value == b->store->term(sb[i].o).value);
  }
  EXPECT_TRUE(differ);
}

TEST(GeneratorTest, RejectsBadSpecs) {
  DatasetSpec spec = EurostatSpec(10);
  spec.dimensions[0].base_level = "no-such-level";
  EXPECT_FALSE(Generate(spec).ok());

  DatasetSpec spec2 = EurostatSpec(10);
  spec2.levels[0].labels.clear();
  EXPECT_FALSE(Generate(spec2).ok());

  DatasetSpec spec3 = EurostatSpec(10);
  spec3.levels.push_back(spec3.levels[0]);  // duplicate level name
  EXPECT_FALSE(Generate(spec3).ok());
}

TEST(GeneratorTest, ObservationAttrsAttached) {
  auto ds = Generate(EurostatSpec(20));
  const rdf::TripleStore& s = *ds->store;
  rdf::TermId sex = s.Lookup(rdf::Term::Iri(ds->spec.iri_base + "sex"));
  ASSERT_NE(sex, rdf::kInvalidTermId);
  EXPECT_EQ(s.CountMatches({rdf::kInvalidTermId, sex, rdf::kInvalidTermId}),
            20u);
}

}  // namespace
}  // namespace re2xolap::qb
