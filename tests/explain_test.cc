#include <string>

#include <gtest/gtest.h>

#include "sparql/explain.h"
#include "tests/test_data.h"

namespace re2xolap::sparql {
namespace {

using re2xolap::testing::BuildFigure1Store;

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override { store = BuildFigure1Store(); }
  std::unique_ptr<rdf::TripleStore> store;
};

// The paper's running example as a GROUP BY candidate query: total
// applicants per origin country.
constexpr char kGroupByQuery[] = R"(
  SELECT ?origin (SUM(?v) AS ?total) WHERE {
    ?s a <http://test/Observation> .
    ?s <http://test/countryOrigin> ?origin .
    ?s <http://test/numApplicants> ?v .
  } GROUP BY ?origin
)";

TEST_F(ExplainTest, GroupByGoldenReport) {
  ExplainOptions options;
  options.include_timing = false;  // deterministic output
  options.exec.executor = ExecutorKind::kVolcano;  // golden pins the label
  auto r = ExplainAnalyzeText(*store, kGroupByQuery, options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->table.row_count(), 3u);  // Syria, China, Nigeria

  const std::string expected =
      "+---------------------------------------+---------+----------+---------+--------+\n"
      "| operator                              | rows in | rows out | scanned | millis |\n"
      "+---------------------------------------+---------+----------+---------+--------+\n"
      "| select                                | 0       | 3        | 0       | *      |\n"
      "|   plan                                | 0       | 0        | 0       | *      |\n"
      "|   join (index nested loop)            | 0       | 5        | 0       | *      |\n"
      "|     scan (?s type Observation)        | 1       | 5        | 5       | *      |\n"
      "|       scan (?s countryOrigin ?origin) | 5       | 5        | 5       | *      |\n"
      "|         scan (?s numApplicants ?v)    | 5       | 5        | 5       | *      |\n"
      "|   aggregate (group by ?origin)        | 5       | 3        | 0       | *      |\n"
      "+---------------------------------------+---------+----------+---------+--------+\n";
  EXPECT_EQ(r->report, expected) << "actual report:\n" << r->report;
}

// Both executors must render the same operator tree with identical
// cardinality counters — only the join operator's label differs.
TEST_F(ExplainTest, VectorizedReportMatchesVolcanoModuloJoinLabel) {
  ExplainOptions options;
  options.include_timing = false;
  options.exec.executor = ExecutorKind::kVolcano;
  auto volcano = ExplainAnalyzeText(*store, kGroupByQuery, options);
  ASSERT_TRUE(volcano.ok()) << volcano.status();
  options.exec.executor = ExecutorKind::kVectorized;
  auto vectorized = ExplainAnalyzeText(*store, kGroupByQuery, options);
  ASSERT_TRUE(vectorized.ok()) << vectorized.status();

  EXPECT_NE(vectorized->report.find("join (vectorized)"), std::string::npos)
      << vectorized->report;
  // Normalize both reports to a common label; everything else (row
  // counts, scanned counts, operator nesting, column padding) must match.
  auto normalize = [](std::string report, const std::string& label) {
    size_t at = report.find(label);
    EXPECT_NE(at, std::string::npos) << report;
    // Pad/trim to a fixed-width placeholder so column widths align.
    std::string out;
    for (std::string::size_type from = 0; from < report.size();) {
      size_t hit = report.find(label, from);
      if (hit == std::string::npos) {
        out += report.substr(from);
        break;
      }
      out += report.substr(from, hit - from) + "join";
      from = hit + label.size();
      // Swallow the padding spaces that follow the label.
      while (from < report.size() && report[from] == ' ') ++from;
      out += ' ';
    }
    return out;
  };
  EXPECT_EQ(normalize(volcano->report, "join (index nested loop)"),
            normalize(vectorized->report, "join (vectorized)"));
  EXPECT_EQ(volcano->stats.triples_scanned, vectorized->stats.triples_scanned);
  EXPECT_EQ(volcano->stats.intermediate_bindings,
            vectorized->stats.intermediate_bindings);
}

TEST_F(ExplainTest, TimingModeMeasuresEveryOperator) {
  auto r = ExplainAnalyzeText(*store, kGroupByQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  const obs::ProfileNode& root = r->stats.profile;
  EXPECT_EQ(root.label, "select");
  EXPECT_TRUE(root.timed);
  EXPECT_GT(root.millis, 0.0);
  // Every scan step is timed in profile mode.
  size_t timed_scans = 0;
  obs::VisitProfile(root, [&](int, const obs::ProfileNode& n) {
    if (n.label.rfind("scan ", 0) == 0) {
      EXPECT_TRUE(n.timed) << n.label;
      ++timed_scans;
    }
  });
  EXPECT_EQ(timed_scans, 3u);
  // The rendered report carries measured numbers, not placeholders.
  EXPECT_EQ(r->report.find(" * "), std::string::npos);
}

TEST_F(ExplainTest, ProfileTreeMatchesExecStats) {
  auto r = ExplainAnalyzeText(*store, kGroupByQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->stats.profile.TotalScanned(), r->stats.triples_scanned);
  EXPECT_GT(r->stats.triples_scanned, 0u);
  EXPECT_GT(r->stats.intermediate_bindings, 0u);
}

TEST_F(ExplainTest, OptionalBlocksAppearInTheTree) {
  auto r = ExplainAnalyzeText(*store, R"(
    SELECT ?o ?cont WHERE {
      ?o a <http://test/Observation> .
      ?o <http://test/countryDestination> ?c .
      OPTIONAL { ?c <http://test/inContinent> ?cont . }
    }
  )");
  ASSERT_TRUE(r.ok()) << r.status();
  bool found_optional = false;
  obs::VisitProfile(r->stats.profile, [&](int, const obs::ProfileNode& n) {
    if (n.label.rfind("optional", 0) == 0) {
      found_optional = true;
      // All 5 rows pass through; destinations have no continent, so no
      // row is extended.
      EXPECT_EQ(n.rows_in, 5u);
      EXPECT_EQ(n.rows_out, 5u);
    }
  });
  EXPECT_TRUE(found_optional);
}

TEST_F(ExplainTest, AskQueriesWrapTheProbe) {
  auto r = ExplainAnalyzeText(
      *store, "ASK { ?s a <http://test/Observation> }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->stats.profile.label, "ask");
  ASSERT_EQ(r->stats.profile.children.size(), 1u);
  EXPECT_EQ(r->stats.profile.children[0].label, "select");
  EXPECT_NE(r->report.find("ask"), std::string::npos);
}

TEST_F(ExplainTest, ImpossiblePlanStillRendersATree) {
  auto r = ExplainAnalyzeText(
      *store, "SELECT ?s WHERE { ?s a <http://test/NoSuchClass> }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->table.row_count(), 0u);
  EXPECT_NE(r->report.find("impossible"), std::string::npos);
}

}  // namespace
}  // namespace re2xolap::sparql
