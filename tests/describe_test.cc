// Tests for the natural-language presentation layer (paper Section 5.1)
// and the similarity-measure options of Problem 2c.

#include <gtest/gtest.h>

#include "core/describe.h"
#include "core/exref.h"
#include "core/reolap.h"
#include "qb/datasets.h"
#include "qb/generator.h"
#include "sparql/executor.h"
#include "tests/test_data.h"

namespace re2xolap::core {
namespace {

TEST(DescribeTest, PrefersRdfsLabelOverLocalName) {
  rdf::TripleStore store;
  rdf::Term pred = rdf::Term::Iri("http://x/countryDestination");
  store.Add(pred, rdf::Term::Iri("http://www.w3.org/2000/01/rdf-schema#label"),
            rdf::Term::StringLiteral("Country of Destination"));
  store.Add(rdf::Term::Iri("http://x/unlabeled"), pred,
            rdf::Term::Iri("http://x/other"));
  store.Freeze();
  EXPECT_EQ(DisplayNameOfIri(store, "http://x/countryDestination"),
            "Country of Destination");
  // Falls back to prettified local names.
  EXPECT_EQ(DisplayNameOfIri(store, "http://x/unlabeled"), "Unlabeled");
  EXPECT_EQ(DisplayNameOfIri(store, "http://never/seenBefore"),
            "Seen Before");
}

TEST(DescribeTest, LiteralsRenderAsTheirValue) {
  rdf::TripleStore store;
  rdf::TermId lit = store.Intern(rdf::Term::StringLiteral("Hello"));
  store.Freeze();
  EXPECT_EQ(DisplayName(store, lit), "Hello");
}

TEST(DescribeTest, GeneratedEurostatUsesCuratedPredicateLabels) {
  auto ds = qb::Generate(qb::EurostatSpec(200));
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(DisplayNameOfIri(*ds->store,
                             ds->spec.iri_base + "countryDestination"),
            "Country of Destination");
  EXPECT_EQ(DisplayNameOfIri(*ds->store, ds->spec.iri_base + "numApplicants"),
            "Number of Applicants");
  auto vsg = VirtualSchemaGraph::Build(*ds->store,
                                       ds->spec.observation_class);
  ASSERT_TRUE(vsg.ok());
  rdf::TextIndex text(*ds->store);
  Reolap reolap(ds->store.get(), &*vsg, &text);
  auto queries = reolap.Synthesize({"Germany"});
  ASSERT_TRUE(queries.ok());
  bool labeled_desc = false;
  for (const CandidateQuery& q : *queries) {
    if (q.description.find("Country of Destination") != std::string::npos) {
      labeled_desc = true;
    }
    EXPECT_NE(q.description.find("Number of Applicants"), std::string::npos);
  }
  EXPECT_TRUE(labeled_desc);
}

// --- similarity measure options ------------------------------------------------

class SimilarityMeasureTest
    : public ::testing::TestWithParam<SimilarityMeasure> {
 protected:
  void SetUp() override {
    store = re2xolap::testing::BuildFigure1Store();
    auto r = VirtualSchemaGraph::Build(*store, re2xolap::testing::kObsClass);
    ASSERT_TRUE(r.ok());
    vsg = std::make_unique<VirtualSchemaGraph>(std::move(r).value());
    text = std::make_unique<rdf::TextIndex>(*store);
    reolap = std::make_unique<Reolap>(store.get(), vsg.get(), text.get());
  }
  std::unique_ptr<rdf::TripleStore> store;
  std::unique_ptr<VirtualSchemaGraph> vsg;
  std::unique_ptr<rdf::TextIndex> text;
  std::unique_ptr<Reolap> reolap;
};

TEST_P(SimilarityMeasureTest, ProducesAnchoredRefinement) {
  auto queries = reolap->Synthesize({"Syria"});
  ASSERT_TRUE(queries.ok());
  ASSERT_FALSE(queries->empty());
  ExploreState st = InitialState((*queries)[0]);
  auto dis = Disaggregate(*vsg, *store, st);
  const ExploreState* with_dest = nullptr;
  for (const ExploreState& d : dis) {
    if (d.extra_columns[0].find("countryDestination") != std::string::npos) {
      with_dest = &d;
    }
  }
  ASSERT_NE(with_dest, nullptr);
  auto table = sparql::Execute(*store, with_dest->query);
  ASSERT_TRUE(table.ok());
  SimilarityOptions opts;
  opts.k = 1;
  opts.measure = GetParam();
  auto refs = SimilaritySearch(*store, *with_dest, *table, opts);
  ASSERT_TRUE(refs.ok());
  ASSERT_FALSE(refs->empty());
  for (const ExploreState& r : *refs) {
    auto rt = sparql::Execute(*store, r.query);
    ASSERT_TRUE(rt.ok());
    EXPECT_GT(rt->row_count(), 0u);
    EXPECT_FALSE(ExampleRowIndexes(r, *rt).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(AllMeasures, SimilarityMeasureTest,
                         ::testing::Values(SimilarityMeasure::kCosine,
                                           SimilarityMeasure::kEuclidean,
                                           SimilarityMeasure::kPearson));

TEST(SimilarityMeasureOrderTest, EuclideanPrefersCloserMagnitudes) {
  // Degenerate-free test directly on sparse vectors is internal; check via
  // results: with Syria (large values) vs China/Nigeria (small), Euclidean
  // should pick the origin whose per-destination totals are numerically
  // closest to the example's.
  auto store = re2xolap::testing::BuildFigure1Store();
  auto vsg = VirtualSchemaGraph::Build(*store, re2xolap::testing::kObsClass);
  ASSERT_TRUE(vsg.ok());
  rdf::TextIndex text(*store);
  Reolap reolap(store.get(), &*vsg, &text);
  auto queries = reolap.Synthesize({"China"});
  ASSERT_TRUE(queries.ok());
  ExploreState st = InitialState((*queries)[0]);
  auto dis = Disaggregate(*vsg, *store, st);
  const ExploreState* with_dest = nullptr;
  for (const ExploreState& d : dis) {
    if (d.extra_columns[0].find("countryDestination") != std::string::npos) {
      with_dest = &d;
    }
  }
  ASSERT_NE(with_dest, nullptr);
  auto table = sparql::Execute(*store, with_dest->query);
  ASSERT_TRUE(table.ok());
  SimilarityOptions opts;
  opts.k = 1;
  opts.measure = SimilarityMeasure::kEuclidean;
  auto refs = SimilaritySearch(*store, *with_dest, *table, opts);
  ASSERT_TRUE(refs.ok());
  ASSERT_FALSE(refs->empty());
  // China(DE)=80; Nigeria(DE)=60; Syria(DE)=903,(FR)=120. Euclidean picks
  // Nigeria as China's nearest neighbor.
  auto rt = sparql::Execute(*store, (*refs)[0].query);
  ASSERT_TRUE(rt.ok());
  bool has_nigeria = false, has_syria = false;
  int col = rt->ColumnIndex((*refs)[0].example_columns[0]);
  for (size_t i = 0; i < rt->row_count(); ++i) {
    std::string name = rt->CellToString(rt->at(i, col));
    has_nigeria |= name == "Nigeria";
    has_syria |= name == "Syria";
  }
  EXPECT_TRUE(has_nigeria);
  EXPECT_FALSE(has_syria);
}

}  // namespace
}  // namespace re2xolap::core
