// Differential tests between the two join cores: every query runs under
// both ExecutorKind::kVolcano and ExecutorKind::kVectorized and must
// produce the identical result table (same rows, same order), identical
// ExecStats invariants (triples_scanned, intermediate_bindings), and
// identical error codes under ExecGuard violations. The volcano runner is
// the oracle; any divergence is a vectorized-runner bug.
#include <chrono>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "qb/datasets.h"
#include "rdf/compressed_index.h"
#include "qb/generator.h"
#include "sparql/executor.h"
#include "tests/test_data.h"
#include "util/exec_guard.h"

namespace re2xolap::sparql {
namespace {

using re2xolap::testing::BuildFigure1Store;

/// Stringified rows, in emission order.
std::vector<std::string> TableRows(const ResultTable& t) {
  std::vector<std::string> rows;
  rows.reserve(t.row_count());
  for (size_t r = 0; r < t.row_count(); ++r) {
    std::string row;
    for (size_t c = 0; c < t.column_count(); ++c) {
      row += t.CellToString(t.at(r, c));
      row += '|';
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Runs `query` under both executors and asserts identical outcomes.
void ExpectSameResults(const rdf::TripleStore& store,
                       const std::string& query) {
  ExecOptions volcano_opts;
  volcano_opts.executor = ExecutorKind::kVolcano;
  ExecOptions vectorized_opts;
  vectorized_opts.executor = ExecutorKind::kVectorized;
  ExecStats volcano_stats, vectorized_stats;
  auto volcano = ExecuteText(store, query, volcano_opts, &volcano_stats);
  auto vectorized =
      ExecuteText(store, query, vectorized_opts, &vectorized_stats);
  ASSERT_EQ(volcano.ok(), vectorized.ok())
      << "volcano: " << volcano.status().ToString()
      << "\nvectorized: " << vectorized.status().ToString() << "\nquery: "
      << query;
  if (!volcano.ok()) {
    EXPECT_EQ(volcano.status().code(), vectorized.status().code())
        << "query: " << query;
    return;
  }
  EXPECT_EQ(volcano->columns(), vectorized->columns()) << "query: " << query;
  // The vectorized pipeline preserves the volcano emission order exactly
  // (blocks flow depth-first, rows in order, extensions in index order),
  // so this is an ordered comparison — strictly stronger than the
  // multiset equality the differential contract requires.
  EXPECT_EQ(TableRows(*volcano), TableRows(*vectorized))
      << "query: " << query;
  EXPECT_EQ(volcano_stats.triples_scanned, vectorized_stats.triples_scanned)
      << "query: " << query;
  EXPECT_EQ(volcano_stats.intermediate_bindings,
            vectorized_stats.intermediate_bindings)
      << "query: " << query;
}

class ExecutorDiffTest : public ::testing::Test {
 protected:
  void SetUp() override { store = BuildFigure1Store(); }
  std::unique_ptr<rdf::TripleStore> store;
};

// The full executor-test query corpus: every language feature the
// executor supports, one query per shape.
const char* const kCorpus[] = {
    // Basic BGPs and joins.
    "SELECT ?obs WHERE { ?obs <http://test/countryDestination> "
    "<http://test/dest/france> }",
    "SELECT * WHERE { ?obs <http://test/countryOrigin> ?origin }",
    R"(SELECT ?obs WHERE {
      ?obs <http://test/countryOrigin> ?c .
      ?c <http://test/inContinent> <http://test/continent/asia> .
      ?obs <http://test/countryDestination> <http://test/dest/germany> .
    })",
    R"(SELECT ?obs WHERE {
      ?obs <http://test/countryOrigin> / <http://test/inContinent>
          <http://test/continent/africa> .
    })",
    "SELECT ?s ?p ?o WHERE { ?s ?p ?o }",
    // Cartesian product (disconnected patterns).
    R"(SELECT ?a ?b WHERE {
      ?a <http://test/inContinent> <http://test/continent/asia> .
      ?b <http://test/countryDestination> <http://test/dest/france> .
    })",
    // Repeated variable within one pattern (bind-then-check path).
    "SELECT ?x WHERE { ?x <http://test/inContinent> ?x }",
    "SELECT ?x ?p WHERE { ?x ?p ?x }",
    // Filters.
    R"(SELECT ?obs WHERE {
      ?obs <http://test/numApplicants> ?v . FILTER (?v >= 403)
    })",
    R"(SELECT ?obs WHERE {
      ?obs <http://test/countryOrigin> ?c .
      FILTER (?c IN (<http://test/origin/syria>, <http://test/origin/china>))
    })",
    R"(SELECT ?obs WHERE {
      ?obs <http://test/numApplicants> ?v .
      FILTER (?v < 100 || ?v > 450)
    })",
    R"(SELECT ?obs WHERE {
      ?obs <http://test/numApplicants> ?v .
      FILTER (!(?v < 100) && ?v != 403)
    })",
    // Aggregation.
    R"(SELECT ?origin ?dest (SUM(?v) AS ?total) WHERE {
      ?obs <http://test/countryOrigin> / <http://test/inContinent> ?origin .
      ?obs <http://test/countryDestination> ?dest .
      ?obs <http://test/numApplicants> ?v .
    } GROUP BY ?origin ?dest)",
    R"(SELECT (SUM(?v) AS ?s) (MIN(?v) AS ?lo) (MAX(?v) AS ?hi)
           (AVG(?v) AS ?mean) (COUNT(?v) AS ?n) WHERE {
      ?obs <http://test/numApplicants> ?v .
    })",
    "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }",
    R"(SELECT ?dest (SUM(?v) AS ?total) WHERE {
      ?obs <http://test/countryDestination> ?dest .
      ?obs <http://test/numApplicants> ?v .
    } GROUP BY ?dest HAVING (?total > 500))",
    // Post-join operators.
    R"(SELECT ?obs ?v WHERE { ?obs <http://test/numApplicants> ?v }
       ORDER BY DESC(?v))",
    "SELECT DISTINCT ?origin WHERE { ?o <http://test/countryOrigin> ?origin }",
    R"(SELECT ?obs ?v WHERE { ?obs <http://test/numApplicants> ?v }
       ORDER BY ASC(?v) LIMIT 2)",
    // LIMIT without ORDER BY takes the early-exit row-cap path.
    "SELECT ?obs WHERE { ?obs <http://test/numApplicants> ?v } LIMIT 2",
    "SELECT ?obs WHERE { ?obs <http://test/numApplicants> ?v } LIMIT 2 "
    "OFFSET 2",
    // OPTIONAL.
    R"(SELECT ?c ?cont WHERE {
      ?o <http://test/countryDestination> ?c .
      OPTIONAL { ?c <http://test/inContinent> ?cont . }
    })",
    R"(SELECT ?c ?cont ?label WHERE {
      ?o <http://test/countryOrigin> ?c .
      OPTIONAL { ?c <http://test/inContinent> ?cont . }
      OPTIONAL { ?c <http://www.w3.org/2000/01/rdf-schema#label> ?label . }
    })",
    R"(SELECT ?o ?m WHERE {
      ?o <http://test/refPeriod> ?p .
      OPTIONAL { ?o <http://test/noSuchPredicate> ?m . }
    })",
    R"(SELECT ?c ?cont WHERE {
      ?o <http://test/countryOrigin> ?c .
      OPTIONAL { ?c <http://test/inContinent> ?cont . }
      FILTER (?cont = <http://test/continent/asia>)
    })",
    R"(SELECT ?c WHERE {
      ?o <http://test/countryDestination> ?c .
      OPTIONAL { ?c <http://test/inContinent> ?cont . }
      FILTER (!BOUND(?cont))
    })",
    // Two OPTIONALs where the first matches several rows per parent,
    // under a row cap (LIMIT without ORDER BY): blocks degrade to
    // capacity 1, so the first optional block flushes into the second
    // mid-loop on every extra match. Regression for the shared scratch
    // row that let that flush clobber the suspended block's row state.
    R"(SELECT ?c ?p ?v ?label WHERE {
      ?c <http://test/inContinent> ?cont .
      OPTIONAL { ?c ?p ?v . }
      OPTIONAL { ?c <http://www.w3.org/2000/01/rdf-schema#label> ?label . }
    } LIMIT 50)",
    // Same shape with the cap binding mid-stream.
    R"(SELECT ?c ?p ?v ?label WHERE {
      ?c <http://test/inContinent> ?cont .
      OPTIONAL { ?c ?p ?v . }
      OPTIONAL { ?c <http://www.w3.org/2000/01/rdf-schema#label> ?label . }
    } LIMIT 3)",
    // VALUES.
    R"(SELECT ?o WHERE {
      ?o <http://test/countryOrigin> ?c .
      VALUES ?c { <http://test/origin/syria> <http://test/origin/nigeria> }
    })",
    // ASK (true and false).
    "ASK WHERE { ?o <http://test/countryDestination> <http://test/dest/france> "
    "}",
    "ASK WHERE { ?o <http://test/numApplicants> ?v . FILTER (?v > 500) }",
    // Provably-empty plan (constant term absent from the dictionary).
    "SELECT ?s WHERE { ?s <http://test/nope> <http://test/nothere> }",
};

TEST_F(ExecutorDiffTest, CorpusProducesIdenticalResults) {
  for (const char* query : kCorpus) {
    SCOPED_TRACE(query);
    ExpectSameResults(*store, query);
  }
}

// Randomized property test: arbitrary BGPs (with variable reuse across
// patterns, constants in arbitrary positions, occasional repeated
// variables inside one pattern) over a small dense random graph.
TEST(ExecutorDiffPropertyTest, RandomBgpsProduceIdenticalResults) {
  rdf::TripleStore store;
  std::mt19937 rng(20260809);
  auto iri = [](const std::string& kind, int i) {
    return rdf::Term::Iri("http://r/" + kind + "/" + std::to_string(i));
  };
  // A dense-ish random multigraph: 24 subjects, 4 predicates, 12 objects,
  // plus object->object edges so multi-hop joins have solutions.
  for (int i = 0; i < 160; ++i) {
    store.Add(iri("s", static_cast<int>(rng() % 24)),
              iri("p", static_cast<int>(rng() % 4)),
              iri("o", static_cast<int>(rng() % 12)));
  }
  for (int i = 0; i < 12; ++i) {
    store.Add(iri("o", i), iri("p", static_cast<int>(rng() % 4)),
              iri("o", static_cast<int>(rng() % 12)));
  }
  store.Freeze();

  const char* vars[] = {"?a", "?b", "?c", "?d", "?e"};
  auto random_term = [&](std::mt19937& r) -> std::string {
    switch (r() % 3) {
      case 0:
        return "<http://r/s/" + std::to_string(r() % 24) + ">";
      case 1:
        return "<http://r/p/" + std::to_string(r() % 4) + ">";
      default:
        return "<http://r/o/" + std::to_string(r() % 12) + ">";
    }
  };
  for (int q = 0; q < 200; ++q) {
    const size_t n_patterns = 1 + rng() % 3;
    std::string body;
    for (size_t i = 0; i < n_patterns; ++i) {
      for (int pos = 0; pos < 3; ++pos) {
        // Bias toward variables so joins actually connect; always make
        // the first pattern's subject a variable so SELECT * projects.
        bool var = (i == 0 && pos == 0) || rng() % 3 != 0;
        body += var ? vars[rng() % 5] : random_term(rng);
        body += ' ';
      }
      body += ". ";
    }
    const std::string query = "SELECT * WHERE { " + body + "}";
    SCOPED_TRACE(query);
    ExpectSameResults(store, query);
  }
}

// Two OPTIONALs at default block capacity (no row cap): the first
// optional's extensions exceed 4096 rows, so its output block fills and
// flushes into the second block mid-loop many times. Regression for the
// shared scratch row: the flush used to re-extract rows into the same
// buffer the suspended first block was still reading, corrupting the
// remaining extensions of the current parent row.
TEST(ExecutorDiffScaleTest, MultiOptionalAcrossBlockBoundaryMatches) {
  auto ds = qb::Generate(qb::EurostatSpec(1500));
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  const qb::DatasetSpec& spec = ds->spec;
  const std::string query = "SELECT * WHERE { ?obs <" + spec.iri_base +
                            spec.dimensions[0].predicate +
                            "> ?d . OPTIONAL { ?obs ?p ?v . } OPTIONAL { ?d "
                            "?q ?w . } }";
  ExpectSameResults(*ds->store, query);
}

// --- guard / error-path parity ----------------------------------------------

TEST_F(ExecutorDiffTest, RowBudgetTripsIdentically) {
  util::ExecGuard::Limits limits;
  limits.max_rows = 2;  // the pattern matches 5 observations
  for (ExecutorKind kind :
       {ExecutorKind::kVolcano, ExecutorKind::kVectorized}) {
    util::ExecGuard guard(limits);
    ExecOptions opts;
    opts.executor = kind;
    opts.guard = &guard;
    auto r = ExecuteText(
        *store,
        "SELECT ?obs ?v WHERE { ?obs <http://test/numApplicants> ?v }", opts);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  }
}

TEST_F(ExecutorDiffTest, RowBudgetTripsWhenNoRowIsEverEmitted) {
  // The first pattern produces (and charges) five intermediate bindings,
  // but the second matches nothing, so the query's result is empty and
  // the emit-path budget recheck never runs. The charge-site recheck must
  // surface the overrun anyway, in both executors — the store is far
  // smaller than the periodic full-check interval.
  util::ExecGuard::Limits limits;
  limits.max_rows = 1;
  for (ExecutorKind kind :
       {ExecutorKind::kVolcano, ExecutorKind::kVectorized}) {
    util::ExecGuard guard(limits);
    ExecOptions opts;
    opts.executor = kind;
    opts.guard = &guard;
    auto r = ExecuteText(*store, R"(
      SELECT ?obs WHERE {
        ?obs <http://test/numApplicants> ?v .
        ?v <http://test/inContinent> ?x .
      })",
                         opts);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
    EXPECT_GT(guard.charged_rows(), limits.max_rows);
  }
}

TEST_F(ExecutorDiffTest, ByteBudgetTripsIdentically) {
  util::ExecGuard::Limits limits;
  limits.max_bytes = 32;
  for (ExecutorKind kind :
       {ExecutorKind::kVolcano, ExecutorKind::kVectorized}) {
    util::ExecGuard guard(limits);
    ExecOptions opts;
    opts.executor = kind;
    opts.guard = &guard;
    auto r = ExecuteText(
        *store,
        "SELECT ?obs ?v WHERE { ?obs <http://test/numApplicants> ?v }", opts);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  }
}

TEST(ExecutorDiffScaleTest, CancellationAndDeadlineTripIdenticallyInJoin) {
  // A full scan over a generated cube crosses the join's periodic
  // full-check interval, so both runners must observe an already-tripped
  // guard *inside the join loop* and surface the same codes.
  auto ds = qb::Generate(qb::EurostatSpec(4000));
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  const std::string query = "SELECT ?s ?p ?o WHERE { ?s ?p ?o }";

  for (ExecutorKind kind :
       {ExecutorKind::kVolcano, ExecutorKind::kVectorized}) {
    util::CancellationToken token;
    token.Cancel();
    util::ExecGuard guard({}, &token);
    ExecOptions opts;
    opts.executor = kind;
    opts.guard = &guard;
    auto r = ExecuteText(*ds->store, query, opts);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
  }

  for (ExecutorKind kind :
       {ExecutorKind::kVolcano, ExecutorKind::kVectorized}) {
    util::ExecGuard guard = util::ExecGuard::WithDeadline(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    ExecOptions opts;
    opts.executor = kind;
    opts.guard = &guard;
    auto r = ExecuteText(*ds->store, query, opts);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsTimeout()) << r.status().ToString();
  }
}

// --- index-format x executor matrix ------------------------------------------

/// Rebuilds `src` under `format`. Terms are re-interned in id order so the
/// clone assigns identical term ids, which makes rows, ExecStats, and error
/// codes comparable bit-for-bit across stores.
std::unique_ptr<rdf::TripleStore> CloneWithFormat(const rdf::TripleStore& src,
                                                  rdf::IndexFormat format) {
  auto out = std::make_unique<rdf::TripleStore>();
  out->set_index_format(format);
  for (rdf::TermId id = 1; id <= src.dictionary().size(); ++id) {
    out->dictionary().Intern(src.term(id));
  }
  for (const rdf::EncodedTriple& t : src.Match(rdf::TriplePattern{})) {
    out->AddEncoded(t);
  }
  out->Freeze();
  return out;
}

/// Runs `query` under both executors on both stores and asserts all four
/// (executor x store) outcomes are identical: rows, columns, scan/binding
/// stats, and error codes. `a` is the raw oracle, `b` the compressed clone.
void ExpectSameAcrossStores(const rdf::TripleStore& a,
                            const rdf::TripleStore& b,
                            const std::string& query) {
  for (ExecutorKind kind :
       {ExecutorKind::kVolcano, ExecutorKind::kVectorized}) {
    ExecOptions opts;
    opts.executor = kind;
    ExecStats stats_a, stats_b;
    auto ra = ExecuteText(a, query, opts, &stats_a);
    auto rb = ExecuteText(b, query, opts, &stats_b);
    ASSERT_EQ(ra.ok(), rb.ok())
        << "raw: " << ra.status().ToString()
        << "\ncompressed: " << rb.status().ToString() << "\nquery: " << query;
    if (!ra.ok()) {
      EXPECT_EQ(ra.status().code(), rb.status().code()) << "query: " << query;
      continue;
    }
    EXPECT_EQ(ra->columns(), rb->columns()) << "query: " << query;
    EXPECT_EQ(TableRows(*ra), TableRows(*rb)) << "query: " << query;
    // Index ranges are position-identical across formats, so the scan and
    // binding counters must match exactly — only chunking differs.
    EXPECT_EQ(stats_a.triples_scanned, stats_b.triples_scanned)
        << "query: " << query;
    EXPECT_EQ(stats_a.intermediate_bindings, stats_b.intermediate_bindings)
        << "query: " << query;
  }
}

// The full corpus under the 4-way matrix {volcano, vectorized} x
// {raw, compressed}: the compressed store must agree executor-to-executor
// AND store-to-store with the raw oracle on every query shape.
TEST_F(ExecutorDiffTest, CorpusIdenticalAcrossIndexFormats) {
  auto compressed = CloneWithFormat(*store, rdf::IndexFormat::kCompressed);
  ASSERT_TRUE(compressed->compressed_index());
  ASSERT_EQ(store->size(), compressed->size());
  for (const char* query : kCorpus) {
    SCOPED_TRACE(query);
    ExpectSameResults(*compressed, query);
    ExpectSameAcrossStores(*store, *compressed, query);
  }
}

// Guard trips must be format-independent too: same typed error, same
// charged rows, under all four executor x format combinations.
TEST_F(ExecutorDiffTest, RowBudgetTripsIdenticallyUnderCompressed) {
  auto compressed = CloneWithFormat(*store, rdf::IndexFormat::kCompressed);
  util::ExecGuard::Limits limits;
  limits.max_rows = 2;  // the pattern matches 5 observations
  for (const rdf::TripleStore* s : {store.get(), compressed.get()}) {
    for (ExecutorKind kind :
         {ExecutorKind::kVolcano, ExecutorKind::kVectorized}) {
      util::ExecGuard guard(limits);
      ExecOptions opts;
      opts.executor = kind;
      opts.guard = &guard;
      auto r = ExecuteText(
          *s, "SELECT ?obs ?v WHERE { ?obs <http://test/numApplicants> ?v }",
          opts);
      ASSERT_FALSE(r.ok());
      EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
    }
  }
}

// Multi-block scale: the generated cube spans several 1024-triple blocks,
// so merge-join gallops cross block seams and OPTIONAL scans decode many
// blocks. Everything must still match the raw oracle exactly.
TEST(ExecutorDiffScaleTest, MultiBlockCompressedStoreMatchesRawOracle) {
  auto ds = qb::Generate(qb::EurostatSpec(1500));
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  auto compressed =
      CloneWithFormat(*ds->store, rdf::IndexFormat::kCompressed);
  ASSERT_TRUE(compressed->compressed_index());
  ASSERT_GT(compressed->spo_blocks()->block_count(), 1u)
      << "scale spec too small to exercise block seams";
  const qb::DatasetSpec& spec = ds->spec;
  const std::string queries[] = {
      "SELECT ?s ?p ?o WHERE { ?s ?p ?o }",
      "SELECT * WHERE { ?obs <" + spec.iri_base +
          spec.dimensions[0].predicate +
          "> ?d . OPTIONAL { ?obs ?p ?v . } OPTIONAL { ?d ?q ?w . } }",
      "SELECT ?d (COUNT(*) AS ?n) WHERE { ?obs <" + spec.iri_base +
          spec.dimensions[0].predicate + "> ?d } GROUP BY ?d",
  };
  for (const std::string& query : queries) {
    SCOPED_TRACE(query);
    ExpectSameResults(*compressed, query);
    ExpectSameAcrossStores(*ds->store, *compressed, query);
  }
}

TEST_F(ExecutorDiffTest, EnvDefaultSelectsExecutor) {
  // kDefault resolves through RE2XOLAP_EXECUTOR (read once per process);
  // whatever it resolves to must execute queries correctly.
  ExecutorKind def = ResolveExecutor(ExecutorKind::kDefault);
  EXPECT_TRUE(def == ExecutorKind::kVolcano ||
              def == ExecutorKind::kVectorized);
  auto r = ExecuteText(
      *store, "SELECT ?obs WHERE { ?obs <http://test/numApplicants> ?v }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->row_count(), 5u);
}

}  // namespace
}  // namespace re2xolap::sparql
