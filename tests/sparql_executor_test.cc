#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "qb/datasets.h"
#include "qb/generator.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "tests/test_data.h"
#include "util/exec_guard.h"

namespace re2xolap::sparql {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override { store = re2xolap::testing::BuildFigure1Store(); }

  ResultTable Run(const std::string& text) {
    auto r = ExecuteText(*store, text);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nquery: " << text;
    return r.ok() ? std::move(r).value() : ResultTable();
  }

  // Finds the value of `target_col` in the unique row where `key_col` has
  // string value `key`.
  double Lookup(const ResultTable& t, const std::string& key_col,
                const std::string& key, const std::string& target_col) {
    int kc = t.ColumnIndex(key_col);
    int tc = t.ColumnIndex(target_col);
    EXPECT_GE(kc, 0);
    EXPECT_GE(tc, 0);
    for (size_t r = 0; r < t.row_count(); ++r) {
      if (t.CellToString(t.at(r, kc)).find(key) != std::string::npos) {
        return t.NumericValue(t.at(r, tc));
      }
    }
    ADD_FAILURE() << "no row with " << key_col << " ~ " << key;
    return -1;
  }

  std::unique_ptr<rdf::TripleStore> store;
};

TEST_F(ExecutorTest, SimpleBgp) {
  ResultTable t = Run(
      "SELECT ?obs WHERE { ?obs <http://test/countryDestination> "
      "<http://test/dest/france> }");
  EXPECT_EQ(t.row_count(), 1u);
}

TEST_F(ExecutorTest, SelectStarProjectsAllUserVariables) {
  ResultTable t = Run(
      "SELECT * WHERE { ?obs <http://test/countryOrigin> ?origin }");
  EXPECT_EQ(t.column_count(), 2u);
  EXPECT_EQ(t.row_count(), 5u);
}

TEST_F(ExecutorTest, JoinAcrossPatterns) {
  // Observations from Asia to Germany.
  ResultTable t = Run(R"(
    SELECT ?obs WHERE {
      ?obs <http://test/countryOrigin> ?c .
      ?c <http://test/inContinent> <http://test/continent/asia> .
      ?obs <http://test/countryDestination> <http://test/dest/germany> .
    })");
  EXPECT_EQ(t.row_count(), 3u);  // obs 0, 1, 3
}

TEST_F(ExecutorTest, PropertyPath) {
  ResultTable t = Run(R"(
    SELECT ?obs WHERE {
      ?obs <http://test/countryOrigin> / <http://test/inContinent>
          <http://test/continent/africa> .
    })");
  EXPECT_EQ(t.row_count(), 1u);  // obs 4 (Nigeria)
}

TEST_F(ExecutorTest, GroupBySum) {
  // Figure 2 query shape: total applicants per continent and destination.
  ResultTable t = Run(R"(
    SELECT ?origin ?dest (SUM(?v) AS ?total) WHERE {
      ?obs <http://test/countryOrigin> / <http://test/inContinent> ?origin .
      ?obs <http://test/countryDestination> ?dest .
      ?obs <http://test/numApplicants> ?v .
    } GROUP BY ?origin ?dest)");
  EXPECT_EQ(t.row_count(), 3u);  // (Asia,DE) (Asia,FR) (Africa,DE)
  EXPECT_DOUBLE_EQ(Lookup(t, "origin", "Africa", "total"), 60);
  EXPECT_DOUBLE_EQ(Lookup(t, "dest", "France", "total"), 120);
  // Asia->Germany: 403 + 500 + 80.
  int oc = t.ColumnIndex("origin"), dc = t.ColumnIndex("dest"),
      tc = t.ColumnIndex("total");
  bool found = false;
  for (size_t r = 0; r < t.row_count(); ++r) {
    if (t.CellToString(t.at(r, oc)).find("Asia") != std::string::npos &&
        t.CellToString(t.at(r, dc)).find("Germany") != std::string::npos) {
      EXPECT_DOUBLE_EQ(t.NumericValue(t.at(r, tc)), 983);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ExecutorTest, AllAggregateFunctions) {
  ResultTable t = Run(R"(
    SELECT (SUM(?v) AS ?s) (MIN(?v) AS ?lo) (MAX(?v) AS ?hi)
           (AVG(?v) AS ?mean) (COUNT(?v) AS ?n) WHERE {
      ?obs <http://test/numApplicants> ?v .
    })");
  ASSERT_EQ(t.row_count(), 1u);
  EXPECT_DOUBLE_EQ(t.NumericValue(t.at(0, t.ColumnIndex("s"))), 1163);
  EXPECT_DOUBLE_EQ(t.NumericValue(t.at(0, t.ColumnIndex("lo"))), 60);
  EXPECT_DOUBLE_EQ(t.NumericValue(t.at(0, t.ColumnIndex("hi"))), 500);
  EXPECT_DOUBLE_EQ(t.NumericValue(t.at(0, t.ColumnIndex("mean"))), 232.6);
  EXPECT_DOUBLE_EQ(t.NumericValue(t.at(0, t.ColumnIndex("n"))), 5);
}

TEST_F(ExecutorTest, CountStar) {
  ResultTable t = Run(
      "SELECT (COUNT(*) AS ?n) WHERE { ?obs a <http://test/Observation> }");
  ASSERT_EQ(t.row_count(), 1u);
  EXPECT_DOUBLE_EQ(t.NumericValue(t.at(0, 0)), 5);
}

TEST_F(ExecutorTest, FilterComparison) {
  ResultTable t = Run(R"(
    SELECT ?obs WHERE {
      ?obs <http://test/numApplicants> ?v . FILTER (?v >= 403)
    })");
  EXPECT_EQ(t.row_count(), 2u);  // 403, 500
}

TEST_F(ExecutorTest, FilterIn) {
  ResultTable t = Run(R"(
    SELECT ?obs WHERE {
      ?obs <http://test/countryOrigin> ?c .
      FILTER (?c IN (<http://test/origin/syria>, <http://test/origin/china>))
    })");
  EXPECT_EQ(t.row_count(), 4u);
}

TEST_F(ExecutorTest, FilterLogicalOps) {
  ResultTable t = Run(R"(
    SELECT ?obs WHERE {
      ?obs <http://test/numApplicants> ?v .
      FILTER (?v < 100 || ?v > 450)
    })");
  EXPECT_EQ(t.row_count(), 3u);  // 80, 60, 500
  ResultTable t2 = Run(R"(
    SELECT ?obs WHERE {
      ?obs <http://test/numApplicants> ?v .
      FILTER (!(?v < 100) && ?v != 403)
    })");
  EXPECT_EQ(t2.row_count(), 2u);  // 120, 500
}

// The planner resolves every filter-variable occurrence to its binding
// slot at plan time, keyed by the address of the name string inside the
// plan-owned expression tree, so executors never hash a string per row.
TEST_F(ExecutorTest, PlannerResolvesFilterVariableSlots) {
  auto query = ParseQuery(R"(
    SELECT ?obs WHERE {
      ?obs <http://test/numApplicants> ?v .
      ?obs <http://test/countryOrigin> ?c .
      FILTER (?v >= 100 && ?v < 500)
      OPTIONAL { ?c <http://test/inContinent> ?cont . }
      FILTER (!BOUND(?cont))
    })");
  ASSERT_TRUE(query.ok()) << query.status();
  auto plan = PlanQuery(*store, *query);
  ASSERT_TRUE(plan.ok()) << plan.status();

  ASSERT_EQ(plan->filters.size(), 1u);
  // Two occurrences of ?v, each resolved to the same slot at its own
  // (pointer-keyed) entry.
  const PlannedFilter& early = plan->filters[0];
  EXPECT_EQ(early.slots.size(), 2u);
  for (const auto& [name, slot] : early.slots.entries()) {
    EXPECT_EQ(*name, "v");
    EXPECT_GE(slot, 0);
    EXPECT_EQ(slot, plan->SlotOf(*name));
  }
  // Pointer-keyed fast path and value-compare fallback agree.
  EXPECT_EQ(early.slots.SlotOf(std::string("v")), plan->SlotOf("v"));
  EXPECT_EQ(early.slots.SlotOf(std::string("nosuch")), -1);

  ASSERT_EQ(plan->post_optional_filters.size(), 1u);
  const PlannedFilter& late = plan->post_optional_filters[0];
  ASSERT_EQ(late.slots.size(), 1u);
  EXPECT_EQ(*late.slots.entries()[0].first, "cont");
  EXPECT_EQ(late.slots.entries()[0].second, plan->SlotOf("cont"));
  EXPECT_GE(late.slots.entries()[0].second, 0);
}

TEST_F(ExecutorTest, EmptyStringEbvIsFalseForVariablesAndConstants) {
  // Regression: a variable bound to an empty-string literal used to
  // evaluate to EBV true while the identical constant evaluated to false.
  // Both must follow the constant-case semantics: "" is false, any
  // non-empty string is true.
  rdf::TripleStore s;
  using rdf::Term;
  Term labeled = Term::Iri("http://test/labeled");
  Term blank = Term::Iri("http://test/blank");
  Term p = Term::Iri("http://test/tag");
  s.Add(labeled, p, Term::StringLiteral("x"));
  s.Add(blank, p, Term::StringLiteral(""));
  s.Freeze();

  auto via_var = ExecuteText(
      s, "SELECT ?s WHERE { ?s <http://test/tag> ?t . FILTER (?t) }");
  ASSERT_TRUE(via_var.ok()) << via_var.status().ToString();
  EXPECT_EQ(via_var->row_count(), 1u);  // only the non-empty tag passes

  auto empty_const = ExecuteText(
      s, "SELECT ?s WHERE { ?s <http://test/tag> ?t . FILTER (\"\") }");
  ASSERT_TRUE(empty_const.ok());
  EXPECT_EQ(empty_const->row_count(), 0u);

  auto nonempty_const = ExecuteText(
      s, "SELECT ?s WHERE { ?s <http://test/tag> ?t . FILTER (\"x\") }");
  ASSERT_TRUE(nonempty_const.ok());
  EXPECT_EQ(nonempty_const->row_count(), 2u);

  // Negation through a variable agrees with the constant case too.
  auto negated = ExecuteText(
      s, "SELECT ?s WHERE { ?s <http://test/tag> ?t . FILTER (!?t) }");
  ASSERT_TRUE(negated.ok());
  EXPECT_EQ(negated->row_count(), 1u);  // only the empty tag
}

TEST_F(ExecutorTest, Having) {
  ResultTable t = Run(R"(
    SELECT ?dest (SUM(?v) AS ?total) WHERE {
      ?obs <http://test/countryDestination> ?dest .
      ?obs <http://test/numApplicants> ?v .
    } GROUP BY ?dest HAVING (?total > 500))");
  ASSERT_EQ(t.row_count(), 1u);  // Germany: 1043
  EXPECT_DOUBLE_EQ(t.NumericValue(t.at(0, t.ColumnIndex("total"))), 1043);
}

TEST_F(ExecutorTest, OrderByNumericDescending) {
  ResultTable t = Run(R"(
    SELECT ?obs ?v WHERE { ?obs <http://test/numApplicants> ?v }
    ORDER BY DESC(?v))");
  ASSERT_EQ(t.row_count(), 5u);
  int vc = t.ColumnIndex("v");
  double prev = 1e18;
  for (size_t r = 0; r < t.row_count(); ++r) {
    double v = t.NumericValue(t.at(r, vc));
    EXPECT_LE(v, prev);
    prev = v;
  }
}

TEST_F(ExecutorTest, LimitOffset) {
  ResultTable all = Run("SELECT ?s WHERE { ?s a <http://test/Observation> }");
  ResultTable page = Run(
      "SELECT ?s WHERE { ?s a <http://test/Observation> } LIMIT 2 OFFSET 2");
  EXPECT_EQ(all.row_count(), 5u);
  EXPECT_EQ(page.row_count(), 2u);
}

TEST_F(ExecutorTest, Distinct) {
  ResultTable t = Run(
      "SELECT DISTINCT ?dest WHERE { ?o <http://test/countryDestination> "
      "?dest }");
  EXPECT_EQ(t.row_count(), 2u);
}

TEST_F(ExecutorTest, UnknownConstantYieldsEmptyNotError) {
  ResultTable t = Run(
      "SELECT ?o WHERE { ?o <http://test/countryDestination> "
      "<http://test/dest/narnia> }");
  EXPECT_EQ(t.row_count(), 0u);
}

TEST_F(ExecutorTest, RepeatedVariableInPattern) {
  // ?x ?p ?x matches nothing in this graph.
  ResultTable t = Run("SELECT ?x WHERE { ?x <http://test/inContinent> ?x }");
  EXPECT_EQ(t.row_count(), 0u);
}

TEST_F(ExecutorTest, ProjectionOutsideGroupByFails) {
  auto r = ExecuteText(
      *store,
      "SELECT ?dest (SUM(?v) AS ?t) WHERE { ?o "
      "<http://test/countryDestination> ?dest . ?o "
      "<http://test/numApplicants> ?v } GROUP BY ?o");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(ExecutorTest, SelectStarWithAggregationFails) {
  auto r = ExecuteText(*store,
                       "SELECT * WHERE { ?o <http://test/numApplicants> ?v } "
                       "GROUP BY ?o");
  EXPECT_FALSE(r.ok());
}

TEST_F(ExecutorTest, OrderByUnknownColumnFails) {
  auto r = ExecuteText(
      *store, "SELECT ?s WHERE { ?s ?p ?o } ORDER BY ASC(?nope)");
  EXPECT_FALSE(r.ok());
}

TEST_F(ExecutorTest, StatsArePopulated) {
  ExecStats stats;
  auto r = ExecuteText(*store,
                       "SELECT ?s WHERE { ?s a <http://test/Observation> }",
                       {}, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(stats.triples_scanned, 0u);
  EXPECT_EQ(stats.intermediate_bindings, 5u);
  EXPECT_GE(stats.exec_millis, 0.0);
}

TEST_F(ExecutorTest, JoinStatsCountEveryStep) {
  // Two mandatory steps: whichever order the planner picks, each step
  // scans 5 index entries and produces 5 extensions.
  ExecStats stats;
  auto r = ExecuteText(*store,
                       "SELECT ?s ?c WHERE { ?s a <http://test/Observation> . "
                       "?s <http://test/countryOrigin> ?c }",
                       {}, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count(), 5u);
  EXPECT_EQ(stats.triples_scanned, 10u);
  EXPECT_EQ(stats.intermediate_bindings, 10u);
  // The per-operator tree carries the same totals.
  EXPECT_EQ(stats.profile.TotalScanned(), stats.triples_scanned);
}

TEST_F(ExecutorTest, OptionalStepsContributeToStats) {
  ExecStats stats;
  auto r = ExecuteText(*store,
                       "SELECT ?s ?y WHERE { "
                       "?s <http://test/refPeriod> ?m . "
                       "OPTIONAL { ?m <http://test/inYear> ?y . } }",
                       {}, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count(), 5u);
  // 5 refPeriod entries + 5 optional inYear lookups (one per month use).
  EXPECT_EQ(stats.triples_scanned, 10u);
  // 5 mandatory extensions + 5 matched optional extensions.
  EXPECT_EQ(stats.intermediate_bindings, 10u);
}

TEST_F(ExecutorTest, PlannerReorderingMatchesUnordered) {
  const std::string q = R"(
    SELECT ?obs WHERE {
      ?obs <http://test/countryOrigin> ?c .
      ?c <http://test/inContinent> <http://test/continent/asia> .
      ?obs <http://test/numApplicants> ?v .
      FILTER (?v > 100)
    })";
  ExecOptions with, without;
  without.plan.use_join_reordering = false;
  auto a = ExecuteText(*store, q, with);
  auto b = ExecuteText(*store, q, without);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->row_count(), b->row_count());
  EXPECT_EQ(a->row_count(), 3u);  // 403, 500, 120
}

TEST_F(ExecutorTest, GroupByWithoutAggregates) {
  ResultTable t = Run(R"(
    SELECT ?dest WHERE {
      ?o <http://test/countryDestination> ?dest .
    } GROUP BY ?dest)");
  EXPECT_EQ(t.row_count(), 2u);
}

// --- execution guardrails ----------------------------------------------------------

/// Returns an ExecGuard whose deadline has already passed.
util::ExecGuard ExpiredGuard() {
  util::ExecGuard guard = util::ExecGuard::WithDeadline(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  return guard;
}

TEST_F(ExecutorTest, ExpiredDeadlineTripsSortButNotSmallJoin) {
  // Regression: the join's periodic deadline check fires only every few
  // thousand scanned entries, so on a tiny store an expired deadline is
  // never noticed there. The sort must still observe it — previously a
  // long ORDER BY could run unbounded after the join finished in time.
  util::ExecGuard guard = ExpiredGuard();
  ExecOptions opts;
  opts.guard = &guard;
  const std::string base =
      "SELECT ?obs ?v WHERE { ?obs <http://test/numApplicants> ?v }";
  auto plain = ExecuteText(*store, base, opts);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain->row_count(), 5u);

  auto sorted = ExecuteText(*store, base + " ORDER BY ?v", opts);
  ASSERT_FALSE(sorted.ok());
  EXPECT_TRUE(sorted.status().IsTimeout()) << sorted.status().ToString();
}

TEST_F(ExecutorTest, ExpiredDeadlineTripsAggregationEmit) {
  util::ExecGuard guard = ExpiredGuard();
  ExecOptions opts;
  opts.guard = &guard;
  auto r = ExecuteText(*store, R"(
    SELECT ?dest (SUM(?v) AS ?total) WHERE {
      ?obs <http://test/countryDestination> ?dest .
      ?obs <http://test/numApplicants> ?v .
    } GROUP BY ?dest)",
                       opts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTimeout()) << r.status().ToString();
}

TEST_F(ExecutorTest, RowBudgetViolationSurfacesAsResourceExhausted) {
  util::ExecGuard::Limits limits;
  limits.max_rows = 2;  // the pattern matches 5 observations
  util::ExecGuard guard(limits);
  ExecOptions opts;
  opts.guard = &guard;
  auto r = ExecuteText(
      *store, "SELECT ?obs ?v WHERE { ?obs <http://test/numApplicants> ?v }",
      opts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
}

TEST_F(ExecutorTest, ByteBudgetViolationSurfacesAsResourceExhausted) {
  util::ExecGuard::Limits limits;
  limits.max_bytes = 32;  // a couple of result cells
  util::ExecGuard guard(limits);
  ExecOptions opts;
  opts.guard = &guard;
  auto r = ExecuteText(
      *store, "SELECT ?obs ?v WHERE { ?obs <http://test/numApplicants> ?v }",
      opts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
}

TEST_F(ExecutorTest, GenerousGuardChargesButDoesNotTrip) {
  util::ExecGuard::Limits limits;
  limits.deadline_millis = 60 * 1000;
  limits.max_rows = 1u << 20;
  limits.max_bytes = 1u << 30;
  util::ExecGuard guard(limits);
  ExecOptions opts;
  opts.guard = &guard;
  auto r = ExecuteText(
      *store, "SELECT ?obs ?v WHERE { ?obs <http://test/numApplicants> ?v }",
      opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->row_count(), 5u);
  EXPECT_GT(guard.charged_rows(), 0u);
  EXPECT_GT(guard.charged_bytes(), 0u);
}

TEST(GuardScaleTest, ShortDeadlineTripsInsideAggregationOnFig7Cube) {
  // Acceptance shape: a 10 ms deadline against the fig7-style generated
  // Eurostat cube returns kTimeout from within aggregation/sort. 2000
  // observations keep the join below its periodic full-check interval,
  // so the trip provably happens at the aggregation boundary, not in the
  // join loop.
  auto ds = qb::Generate(qb::EurostatSpec(2000));
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  const qb::DatasetSpec& spec = ds->spec;
  const std::string query =
      "SELECT ?d (SUM(?v) AS ?total) WHERE { ?o <" + spec.iri_base +
      spec.dimensions[0].predicate + "> ?d . ?o <" + spec.iri_base +
      spec.measure_predicates[0] +
      "> ?v . } GROUP BY ?d ORDER BY ?total";

  util::ExecGuard guard = util::ExecGuard::WithDeadline(10);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  ExecOptions opts;
  opts.guard = &guard;
  auto r = ExecuteText(*ds->store, query, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTimeout()) << r.status().ToString();

  // Sanity: the same query completes without the guard.
  auto ok = ExecuteText(*ds->store, query);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_GT(ok->row_count(), 0u);
}

TEST_F(ExecutorTest, AmortizedGuardStillSurfacesRowBudgetOnTinyScans) {
  // Regression for guard over-polling: CheckBudgets used to run on every
  // scanned index entry ahead of the interval gate. The full poll is now
  // amortized behind kGuardCheckInterval, so on a store far smaller than
  // the interval the only budget polls are the charge-site and
  // per-emitted-row rechecks — which must still surface the violation.
  util::ExecGuard::Limits limits;
  limits.max_rows = 1;  // trips on the second produced binding
  for (ExecutorKind kind :
       {ExecutorKind::kVolcano, ExecutorKind::kVectorized}) {
    util::ExecGuard guard(limits);
    ExecOptions opts;
    opts.executor = kind;
    opts.guard = &guard;
    auto r = ExecuteText(
        *store,
        "SELECT ?obs ?v WHERE { ?obs <http://test/numApplicants> ?v }", opts);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
    EXPECT_GT(guard.charged_rows(), limits.max_rows);
  }
}

TEST_F(ExecutorTest, AmortizedGuardSkipsBudgetPollsWithinInterval) {
  // With the whole store far below the check interval and no rows ever
  // emitted (aggregation sinks bypass the emit-path recheck until Emit),
  // an over-budget *byte* charge from the group state must still surface
  // at the aggregation boundary — the join itself legitimately no longer
  // notices it mid-scan.
  util::ExecGuard::Limits limits;
  limits.max_bytes = 1;
  util::ExecGuard guard(limits);
  ExecOptions opts;
  opts.guard = &guard;
  auto r = ExecuteText(*store, R"(
    SELECT ?dest (SUM(?v) AS ?total) WHERE {
      ?obs <http://test/countryDestination> ?dest .
      ?obs <http://test/numApplicants> ?v .
    } GROUP BY ?dest)",
                       opts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
}

TEST_F(ExecutorTest, CancellationAbortsExecution) {
  util::CancellationToken token;
  token.Cancel();
  util::ExecGuard guard({}, &token);
  ExecOptions opts;
  opts.guard = &guard;
  // ORDER BY forces a full guard check at the sort boundary, where the
  // cancellation is observed even though the tiny join finished first.
  auto r = ExecuteText(*store,
                       "SELECT ?obs ?v WHERE "
                       "{ ?obs <http://test/numApplicants> ?v } ORDER BY ?v",
                       opts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
}

}  // namespace
}  // namespace re2xolap::sparql

namespace re2xolap::sparql {
namespace {

class ExecutorExtTest : public ::testing::Test {
 protected:
  void SetUp() override { store = re2xolap::testing::BuildFigure1Store(); }
  std::unique_ptr<rdf::TripleStore> store;
};

TEST_F(ExecutorExtTest, AskTrueAndFalse) {
  auto yes = ExecuteText(
      *store,
      "ASK WHERE { ?o <http://test/countryDestination> "
      "<http://test/dest/germany> }");
  ASSERT_TRUE(yes.ok()) << yes.status().ToString();
  ASSERT_EQ(yes->row_count(), 1u);
  EXPECT_EQ(yes->columns()[0], "ask");
  EXPECT_DOUBLE_EQ(yes->NumericValue(yes->at(0, 0)), 1.0);

  auto no = ExecuteText(
      *store,
      "ASK WHERE { ?o <http://test/countryDestination> "
      "<http://test/dest/narnia> }");
  ASSERT_TRUE(no.ok());
  EXPECT_DOUBLE_EQ(no->NumericValue(no->at(0, 0)), 0.0);
}

TEST_F(ExecutorExtTest, AskWithFilter) {
  auto r = ExecuteText(*store,
                       "ASK WHERE { ?o <http://test/numApplicants> ?v . "
                       "FILTER (?v > 499) }");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->NumericValue(r->at(0, 0)), 1.0);
  auto r2 = ExecuteText(*store,
                        "ASK WHERE { ?o <http://test/numApplicants> ?v . "
                        "FILTER (?v > 500) }");
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(r2->NumericValue(r2->at(0, 0)), 0.0);
}

TEST_F(ExecutorExtTest, AskAllConstantPattern) {
  auto r = ExecuteText(
      *store,
      "ASK WHERE { <http://test/origin/syria> <http://test/inContinent> "
      "<http://test/continent/asia> }");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->NumericValue(r->at(0, 0)), 1.0);
}

TEST_F(ExecutorExtTest, AskRoundTripsThroughToSparql) {
  auto q = ParseQuery("ASK WHERE { ?s ?p ?o }");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->is_ask);
  auto q2 = ParseQuery(ToSparql(*q));
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(q2->is_ask);
}

TEST_F(ExecutorExtTest, CountDistinct) {
  // 5 observations but only 3 distinct origin countries.
  auto r = ExecuteText(
      *store,
      "SELECT (COUNT(DISTINCT ?c) AS ?n) WHERE { ?o "
      "<http://test/countryOrigin> ?c }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(r->NumericValue(r->at(0, 0)), 3.0);
  // Plain COUNT for contrast.
  auto r2 = ExecuteText(*store,
                        "SELECT (COUNT(?c) AS ?n) WHERE { ?o "
                        "<http://test/countryOrigin> ?c }");
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(r2->NumericValue(r2->at(0, 0)), 5.0);
}

TEST_F(ExecutorExtTest, CountDistinctPerGroup) {
  auto r = ExecuteText(
      *store,
      "SELECT ?dest (COUNT(DISTINCT ?c) AS ?n) WHERE { ?o "
      "<http://test/countryDestination> ?dest . ?o "
      "<http://test/countryOrigin> ?c } GROUP BY ?dest");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->row_count(), 2u);
  int dc = r->ColumnIndex("dest"), nc = r->ColumnIndex("n");
  for (size_t i = 0; i < r->row_count(); ++i) {
    double n = r->NumericValue(r->at(i, nc));
    if (r->CellToString(r->at(i, dc)) == "Germany") {
      EXPECT_DOUBLE_EQ(n, 3.0);  // Syria, China, Nigeria
    } else {
      EXPECT_DOUBLE_EQ(n, 1.0);  // France: Syria only
    }
  }
}

TEST_F(ExecutorExtTest, DistinctOnlyForCount) {
  EXPECT_FALSE(ParseQuery("SELECT (SUM(DISTINCT ?v) AS ?s) WHERE "
                          "{ ?o <http://test/p> ?v }")
                   .ok());
}

TEST_F(ExecutorExtTest, EarlyExitLimitMatchesFullScanPrefixSemantics) {
  ExecStats limited_stats, full_stats;
  auto limited = ExecuteText(
      *store, "SELECT ?o WHERE { ?o a <http://test/Observation> } LIMIT 2",
      {}, &limited_stats);
  auto full = ExecuteText(
      *store, "SELECT ?o WHERE { ?o a <http://test/Observation> }", {},
      &full_stats);
  ASSERT_TRUE(limited.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(limited->row_count(), 2u);
  EXPECT_EQ(full->row_count(), 5u);
  // The limited run stopped early: strictly fewer bindings produced.
  EXPECT_LT(limited_stats.intermediate_bindings,
            full_stats.intermediate_bindings);
}

TEST_F(ExecutorExtTest, LimitWithOrderByStillSeesAllRows) {
  // ORDER BY prevents the early exit: the 2 smallest values must win.
  auto r = ExecuteText(*store,
                       "SELECT ?o ?v WHERE { ?o <http://test/numApplicants> "
                       "?v } ORDER BY ASC(?v) LIMIT 2");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->row_count(), 2u);
  EXPECT_DOUBLE_EQ(r->NumericValue(r->at(0, r->ColumnIndex("v"))), 60);
  EXPECT_DOUBLE_EQ(r->NumericValue(r->at(1, r->ColumnIndex("v"))), 80);
}

}  // namespace
}  // namespace re2xolap::sparql

namespace re2xolap::sparql {
namespace {

class OptionalTest : public ::testing::Test {
 protected:
  void SetUp() override { store = re2xolap::testing::BuildFigure1Store(); }
  std::unique_ptr<rdf::TripleStore> store;
};

TEST_F(OptionalTest, UnmatchedOptionalLeavesUnbound) {
  // Destination countries have no continent hierarchy: OPTIONAL yields
  // null for them, but rows survive.
  auto r = ExecuteText(*store, R"(
    SELECT DISTINCT ?c ?cont WHERE {
      ?o <http://test/countryDestination> ?c .
      OPTIONAL { ?c <http://test/inContinent> ?cont . }
    })");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->row_count(), 2u);  // Germany, France
  int cc = r->ColumnIndex("cont");
  for (size_t i = 0; i < r->row_count(); ++i) {
    EXPECT_TRUE(r->at(i, cc).is_null());
  }
}

TEST_F(OptionalTest, MatchedOptionalBindsValues) {
  auto r = ExecuteText(*store, R"(
    SELECT DISTINCT ?c ?cont WHERE {
      ?o <http://test/countryOrigin> ?c .
      OPTIONAL { ?c <http://test/inContinent> ?cont . }
    })");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->row_count(), 3u);  // Syria, China, Nigeria — all matched
  int cc = r->ColumnIndex("cont");
  for (size_t i = 0; i < r->row_count(); ++i) {
    EXPECT_TRUE(r->at(i, cc).is_term());
  }
}

TEST_F(OptionalTest, OptionalNeverReducesRows) {
  auto base = ExecuteText(
      *store, "SELECT ?o WHERE { ?o a <http://test/Observation> }");
  auto with_opt = ExecuteText(*store, R"(
    SELECT ?o WHERE {
      ?o a <http://test/Observation> .
      OPTIONAL { ?o <http://test/noSuchPredicate> ?x . }
    })");
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(with_opt.ok());
  EXPECT_EQ(with_opt->row_count(), base->row_count());
}

TEST_F(OptionalTest, OptionalFanOutMultipliesOnlyMatches) {
  // One origin country with multiple observation links: OPTIONAL over a
  // reverse-ish pattern. Syria appears in 3 observations.
  auto r = ExecuteText(*store, R"(
    SELECT ?o WHERE {
      ?o <http://test/countryOrigin> <http://test/origin/syria> .
      OPTIONAL { ?o <http://test/refPeriod> ?m . }
    })");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count(), 3u);  // each obs has exactly one month
}

TEST_F(OptionalTest, TwoOptionalBlocksComposeLeftToRight) {
  auto r = ExecuteText(*store, R"(
    SELECT DISTINCT ?c ?cont ?label WHERE {
      ?o <http://test/countryDestination> ?c .
      OPTIONAL { ?c <http://test/inContinent> ?cont . }
      OPTIONAL { ?c <http://www.w3.org/2000/01/rdf-schema#label> ?label . }
    })");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->row_count(), 2u);
  int lc = r->ColumnIndex("label");
  int cc = r->ColumnIndex("cont");
  for (size_t i = 0; i < r->row_count(); ++i) {
    EXPECT_TRUE(r->at(i, lc).is_term());   // labels exist
    EXPECT_TRUE(r->at(i, cc).is_null());   // continents don't
  }
}

TEST_F(OptionalTest, FilterOnOptionalVarDropsUnbound) {
  // BOUND-style semantics: a filter over the optional variable removes
  // rows where it is unbound.
  auto r = ExecuteText(*store, R"(
    SELECT DISTINCT ?c WHERE {
      ?o <http://test/countryOrigin> ?c .
      OPTIONAL { ?c <http://test/inContinent> ?cont . }
      FILTER (?cont = <http://test/continent/asia>)
    })");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_count(), 2u);  // Syria, China
}

TEST_F(OptionalTest, BoundFilterDetectsOptionalMatch) {
  auto r = ExecuteText(*store, R"(
    SELECT DISTINCT ?c WHERE {
      ?o <http://test/countryDestination> ?c .
      OPTIONAL { ?c <http://test/inContinent> ?cont . }
      FILTER (!BOUND(?cont))
    })");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->row_count(), 2u);  // no destination has a continent
}

TEST_F(OptionalTest, AggregateSkipsUnboundOptional) {
  auto r = ExecuteText(*store, R"(
    SELECT (COUNT(?cont) AS ?n) (COUNT(*) AS ?all) WHERE {
      ?o <http://test/countryOrigin> ?c .
      OPTIONAL { ?c <http://test/inContinent> ?cont . }
    })");
  ASSERT_TRUE(r.ok());
  // All 5 observations have origins with continents here.
  EXPECT_DOUBLE_EQ(r->NumericValue(r->at(0, r->ColumnIndex("n"))), 5.0);
  EXPECT_DOUBLE_EQ(r->NumericValue(r->at(0, r->ColumnIndex("all"))), 5.0);
}

TEST_F(OptionalTest, RoundTripsThroughToSparql) {
  auto q = ParseQuery(
      "SELECT ?c WHERE { ?o <http://p> ?c . OPTIONAL { ?c <http://q> ?x . "
      "?x <http://r> ?y . } }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->optional_blocks.size(), 1u);
  EXPECT_EQ(q->optional_blocks[0].size(), 2u);
  auto q2 = ParseQuery(ToSparql(*q));
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_EQ(q2->optional_blocks.size(), 1u);
}

TEST_F(OptionalTest, EmptyOptionalBlockIsError) {
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { ?s ?p ?o . OPTIONAL { } }").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT ?s WHERE { ?s ?p ?o . OPTIONAL { ?a ?b ?c ").ok());
}

}  // namespace
}  // namespace re2xolap::sparql

#include "sparql/csv.h"

namespace re2xolap::sparql {
namespace {

TEST(CsvTest, WritesHeaderAndQuotedCells) {
  rdf::TripleStore store;
  store.Freeze();
  ResultTable t(&store, {"name", "value"});
  Row r1;
  r1.push_back(Cell::OfNumber(2.5));
  r1.push_back(Cell::Null());
  t.AddRow(r1);
  std::ostringstream os;
  WriteCsv(t, os);
  EXPECT_EQ(os.str(), "name,value\n2.5,\n");
}

TEST(CsvTest, EscapesCommasAndQuotes) {
  rdf::TripleStore store;
  rdf::TermId lit =
      store.Intern(rdf::Term::StringLiteral("a,\"b\"\nc"));
  store.Freeze();
  ResultTable t(&store, {"x"});
  Row r;
  r.push_back(Cell::OfTerm(lit));
  t.AddRow(r);
  std::ostringstream os;
  WriteCsv(t, os);
  EXPECT_EQ(os.str(), "x\n\"a,\"\"b\"\"\nc\"\n");
}

TEST(CsvTest, EndToEndFromQuery) {
  auto store = re2xolap::testing::BuildFigure1Store();
  auto r = ExecuteText(
      *store,
      "SELECT ?dest (SUM(?v) AS ?total) WHERE { ?o "
      "<http://test/countryDestination> ?dest . ?o "
      "<http://test/numApplicants> ?v } GROUP BY ?dest ORDER BY DESC(?total)");
  ASSERT_TRUE(r.ok());
  std::ostringstream os;
  WriteCsv(*r, os);
  EXPECT_EQ(os.str(), "dest,total\nGermany,1043\nFrance,120\n");
}

}  // namespace
}  // namespace re2xolap::sparql

namespace re2xolap::sparql {
namespace {

TEST(ValuesExecTest, RestrictsBindings) {
  auto store = re2xolap::testing::BuildFigure1Store();
  auto r = ExecuteText(*store, R"(
    SELECT ?obs WHERE {
      ?obs <http://test/countryOrigin> ?c .
      VALUES ?c { <http://test/origin/syria> <http://test/origin/nigeria> }
    })");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->row_count(), 4u);  // 3 Syria + 1 Nigeria observations
}

}  // namespace
}  // namespace re2xolap::sparql
