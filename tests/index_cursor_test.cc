// Property tests of the index-cursor abstraction and the compressed block
// index format: randomized triple sets (duplicate-heavy and
// single-predicate-skewed shapes) must round-trip through raw and
// compressed Freeze with bit-identical Match / CountMatches results and
// identical freeze_epoch; cursor seeks and chunked scans must agree with
// the plain sorted arrays; corrupted blocks must surface typed Status,
// never crash.
#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "rdf/compressed_index.h"
#include "rdf/index_cursor.h"
#include "rdf/triple_store.h"

namespace re2xolap::rdf {
namespace {

constexpr TermId kUnbound = kInvalidTermId;

/// Uniform term id in [lo, lo + n) — mt19937 yields unsigned long on this
/// platform, so aggregate-init of EncodedTriple needs the explicit cast.
TermId Rand(std::mt19937& rng, uint32_t n, uint32_t lo = 1) {
  return static_cast<TermId>(lo + rng() % n);
}

/// Interns `terms` distinct IRIs and returns a store with `triples` added
/// (not yet frozen). `shape` picks the id distribution:
///   duplicate-heavy: tiny id universe, so most triples collide and the
///     dedup + zero-delta encodings (d0=0, d1=0 runs) dominate;
///   single-predicate skew: 90% of triples share one predicate, so one
///     POS run spans many blocks.
enum class Shape { kDuplicateHeavy, kSinglePredicateSkew };

void FillStore(TripleStore* store, Shape shape, size_t triples,
               uint32_t seed) {
  std::mt19937 rng(seed);
  const uint32_t terms = shape == Shape::kDuplicateHeavy ? 24 : 4000;
  for (uint32_t i = 0; i < terms; ++i) {
    store->dictionary().Intern(
        Term::Iri("http://t/" + std::to_string(i)));
  }
  for (size_t i = 0; i < triples; ++i) {
    EncodedTriple t;
    if (shape == Shape::kDuplicateHeavy) {
      t = {Rand(rng, terms), Rand(rng, terms), Rand(rng, terms)};
    } else {
      t.s = Rand(rng, terms);
      t.p = rng() % 10 != 0 ? 7 : Rand(rng, 16);  // 90% one predicate
      t.o = Rand(rng, terms);
    }
    store->AddEncoded(t);
  }
}

/// The store's exact encoded triples via Match — materialized so two
/// stores' answers can be compared bit-for-bit.
std::vector<EncodedTriple> Materialize(IndexRange range) {
  std::vector<EncodedTriple> out;
  out.reserve(range.size());
  for (const EncodedTriple& t : range) out.push_back(t);
  return out;
}

bool SameTriples(const std::vector<EncodedTriple>& a,
                 const std::vector<EncodedTriple>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].s != b[i].s || a[i].p != b[i].p || a[i].o != b[i].o) {
      return false;
    }
  }
  return true;
}

class IndexFormatPropertyTest : public ::testing::TestWithParam<Shape> {};

// The core round-trip property: for the same input triples, a raw-frozen
// and a compressed-frozen store answer every pattern shape (all 8 bound
// combinations) with bit-identical triples in identical order, identical
// CountMatches, and identical freeze_epoch.
TEST_P(IndexFormatPropertyTest, RawAndCompressedMatchBitIdentically) {
  TripleStore raw, compressed;
  raw.set_index_format(IndexFormat::kRaw);  // env-proof: force both formats
  compressed.set_index_format(IndexFormat::kCompressed);
  FillStore(&raw, GetParam(), 6000, 20260809);
  FillStore(&compressed, GetParam(), 6000, 20260809);
  raw.Freeze();
  compressed.Freeze();
  ASSERT_FALSE(raw.compressed_index());
  ASSERT_TRUE(compressed.compressed_index());
  EXPECT_EQ(raw.size(), compressed.size());
  EXPECT_EQ(raw.freeze_epoch(), compressed.freeze_epoch());

  std::mt19937 rng(7);
  std::vector<EncodedTriple> all = Materialize(raw.Match(TriplePattern{}));
  ASSERT_FALSE(all.empty());
  for (int probe = 0; probe < 200; ++probe) {
    // Half the probes are triples that exist (so bound components hit),
    // half arbitrary ids (mostly misses).
    EncodedTriple base = probe % 2 == 0
                             ? all[rng() % all.size()]
                             : EncodedTriple{Rand(rng, 64), Rand(rng, 64),
                                             Rand(rng, 64)};
    for (uint32_t mask = 0; mask < 8; ++mask) {
      TriplePattern q;
      q.s = (mask & 1) != 0 ? base.s : kUnbound;
      q.p = (mask & 2) != 0 ? base.p : kUnbound;
      q.o = (mask & 4) != 0 ? base.o : kUnbound;
      SCOPED_TRACE("mask=" + std::to_string(mask) +
                   " s=" + std::to_string(q.s) + " p=" + std::to_string(q.p) +
                   " o=" + std::to_string(q.o));
      EXPECT_EQ(raw.CountMatches(q), compressed.CountMatches(q));
      EXPECT_TRUE(
          SameTriples(Materialize(raw.Match(q)), Materialize(compressed.Match(q))));
    }
    EXPECT_EQ(raw.PredicatesOfSubject(base.s),
              compressed.PredicatesOfSubject(base.s));
    EXPECT_EQ(raw.PredicatesOfObject(base.o),
              compressed.PredicatesOfObject(base.o));
  }
}

// Re-freezing after a mutation must advance both stores' epochs in
// lockstep, and the compressed store must keep answering correctly after
// the Materialize -> mutate -> re-Freeze cycle.
TEST_P(IndexFormatPropertyTest, MutationRefreezeKeepsEpochAndResultsAligned) {
  TripleStore raw, compressed;
  raw.set_index_format(IndexFormat::kRaw);  // env-proof: force both formats
  compressed.set_index_format(IndexFormat::kCompressed);
  FillStore(&raw, GetParam(), 3000, 99);
  FillStore(&compressed, GetParam(), 3000, 99);
  raw.Freeze();
  compressed.Freeze();
  ASSERT_EQ(raw.freeze_epoch(), 1u);
  ASSERT_EQ(compressed.freeze_epoch(), 1u);

  raw.AddEncoded({2, 3, 4});
  compressed.AddEncoded({2, 3, 4});
  raw.Freeze();
  compressed.Freeze();
  EXPECT_EQ(raw.freeze_epoch(), 2u);
  EXPECT_EQ(compressed.freeze_epoch(), 2u);
  EXPECT_EQ(raw.size(), compressed.size());
  EXPECT_TRUE(SameTriples(Materialize(raw.Match(TriplePattern{})),
                          Materialize(compressed.Match(TriplePattern{}))));
}

INSTANTIATE_TEST_SUITE_P(Shapes, IndexFormatPropertyTest,
                         ::testing::Values(Shape::kDuplicateHeavy,
                                           Shape::kSinglePredicateSkew));

// --- CompressedPermutation codec --------------------------------------------

std::vector<EncodedTriple> SortedUnique(std::vector<EncodedTriple> v,
                                        Perm perm) {
  std::sort(v.begin(), v.end(), [perm](const EncodedTriple& a,
                                       const EncodedTriple& b) {
    return PermLess(perm, a, b);
  });
  v.erase(std::unique(v.begin(), v.end(),
                      [](const EncodedTriple& a, const EncodedTriple& b) {
                        return a.s == b.s && a.p == b.p && a.o == b.o;
                      }),
          v.end());
  return v;
}

TEST(CompressedPermutationTest, BuildDecodeAllRoundTripsEveryPerm) {
  std::mt19937 rng(42);
  std::vector<EncodedTriple> triples;
  for (int i = 0; i < 5000; ++i) {
    triples.push_back({Rand(rng, 300), Rand(rng, 8), Rand(rng, 1000)});
  }
  for (Perm perm : {Perm::kSpo, Perm::kPos, Perm::kOsp}) {
    std::vector<EncodedTriple> sorted = SortedUnique(triples, perm);
    CompressedPermutation cp = CompressedPermutation::Build(sorted, perm);
    EXPECT_EQ(cp.size(), sorted.size());
    EXPECT_EQ(cp.block_count(),
              CompressedPermutation::BlockCountFor(sorted.size()));
    EXPECT_LT(cp.byte_size(), sorted.size() * sizeof(EncodedTriple))
        << "compressed form should beat 12 bytes/triple on dense ids";
    std::vector<EncodedTriple> decoded;
    cp.DecodeAll(&decoded);
    EXPECT_TRUE(SameTriples(decoded, sorted));
    // Checked decode agrees with the trusted decode on clean data.
    std::vector<EncodedTriple> block;
    for (uint64_t b = 0; b < cp.block_count(); ++b) {
      ASSERT_TRUE(cp.DecodeBlockChecked(b, &block).ok());
    }
  }
}

TEST(CompressedPermutationTest, CorruptedPayloadYieldsTypedStatusNeverUB) {
  std::vector<EncodedTriple> sorted;
  for (uint32_t i = 1; i <= 3000; ++i) sorted.push_back({i, 1 + i % 5, i});
  sorted = SortedUnique(std::move(sorted), Perm::kSpo);
  CompressedPermutation cp = CompressedPermutation::Build(sorted, Perm::kSpo);
  ASSERT_GT(cp.block_count(), 1u);

  // Flip one payload byte at a time (sampled) and re-adopt the parts:
  // every corruption must either decode-check to a ParseError or be
  // caught by the checksum — and the trusted decoder must stay within
  // bounds (ASan guards the "never UB" half).
  std::vector<BlockMeta> skip(cp.skip().begin(), cp.skip().end());
  std::vector<uint8_t> payload(cp.payload().begin(), cp.payload().end());
  std::mt19937 rng(5);
  int detected = 0;
  for (int trial = 0; trial < 32; ++trial) {
    std::vector<uint8_t> bad = payload;
    bad[rng() % bad.size()] ^= 0x5b;
    CompressedPermutation view = CompressedPermutation::FromParts(
        skip, bad, sorted.size(), Perm::kSpo);
    std::vector<EncodedTriple> block;
    bool ok = true;
    for (uint64_t b = 0; b < view.block_count() && ok; ++b) {
      util::Status st = view.DecodeBlockChecked(b, &block);
      if (!st.ok()) {
        EXPECT_TRUE(st.IsParseError()) << st.ToString();
        ok = false;
      }
      // Trusted decode on the same corrupt block: wrong triples are
      // acceptable, out-of-bounds reads are not.
      view.DecodeBlock(b, &block);
    }
    if (!ok) ++detected;
  }
  EXPECT_EQ(detected, 32) << "every payload bit flip must fail validation";

  // A skip-table corruption (byte offset) shifts two adjacent block
  // bodies, so both checksums mismatch with a typed ParseError. (A
  // corrupted first-triple key is only detectable across blocks; the
  // snapshot loader's cross-block ordering pass owns that check.)
  std::vector<BlockMeta> bad_skip = skip;
  bad_skip[1].byte_offset += 1;
  CompressedPermutation view = CompressedPermutation::FromParts(
      bad_skip, payload, sorted.size(), Perm::kSpo);
  std::vector<EncodedTriple> block;
  for (uint64_t b : {uint64_t{0}, uint64_t{1}}) {
    util::Status st = view.DecodeBlockChecked(b, &block);
    EXPECT_FALSE(st.ok());
    EXPECT_TRUE(st.IsParseError()) << st.ToString();
  }
}

// --- IndexRange / IndexCursor semantics --------------------------------------

class IndexRangeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::mt19937 rng(11);
    for (int i = 0; i < 4000; ++i) {
      triples_.push_back({Rand(rng, 200), Rand(rng, 6), Rand(rng, 500)});
    }
    triples_ = SortedUnique(std::move(triples_), Perm::kSpo);
    cp_ = CompressedPermutation::Build(triples_, Perm::kSpo);
    raw_ = IndexRange::FromSpan(triples_, Perm::kSpo);
    comp_ = IndexRange::FromBlocks(&cp_, 0, cp_.size(), Perm::kSpo);
  }

  std::vector<EncodedTriple> triples_;
  CompressedPermutation cp_;
  IndexRange raw_;
  IndexRange comp_;
};

TEST_F(IndexRangeTest, SearchesAgreeWithStdAlgorithmsOnBothBackings) {
  std::mt19937 rng(3);
  IndexBlockScratch scratch;
  for (int i = 0; i < 400; ++i) {
    EncodedTriple probe{Rand(rng, 220), Rand(rng, 8, 0), Rand(rng, 520, 0)};
    const uint64_t expect_lb =
        std::lower_bound(triples_.begin(), triples_.end(), probe,
                         SpoLess()) -
        triples_.begin();
    const uint64_t expect_ub =
        std::upper_bound(triples_.begin(), triples_.end(), probe,
                         SpoLess()) -
        triples_.begin();
    for (const IndexRange* r : {&raw_, &comp_}) {
      EXPECT_EQ(r->LowerBound(probe, &scratch), expect_lb);
      EXPECT_EQ(r->UpperBound(probe, &scratch), expect_ub);
      // Gallop from an arbitrary valid start at or before the answer.
      const uint64_t from = expect_lb == 0 ? 0 : rng() % expect_lb;
      EXPECT_EQ(r->GallopLowerBound(from, probe, &scratch), expect_lb);
      EXPECT_EQ(r->GallopUpperBound(from, probe, &scratch), expect_ub);
    }
  }
}

TEST_F(IndexRangeTest, SlicedRangesKeepRelativePositionSemantics) {
  std::mt19937 rng(17);
  IndexBlockScratch scratch;
  for (int i = 0; i < 50; ++i) {
    uint64_t lo = rng() % triples_.size();
    uint64_t hi = lo + rng() % (triples_.size() - lo);
    IndexRange raw_slice = raw_.Slice(lo, hi);
    IndexRange comp_slice = comp_.Slice(lo, hi);
    ASSERT_EQ(raw_slice.size(), hi - lo);
    ASSERT_EQ(comp_slice.size(), hi - lo);
    if (lo < hi) {
      EXPECT_EQ(raw_slice.front().s, triples_[lo].s);
      EXPECT_EQ(comp_slice.front().s, triples_[lo].s);
      EXPECT_EQ(comp_slice.back().o, triples_[hi - 1].o);
      const uint64_t mid = (hi - lo) / 2;
      EXPECT_EQ(comp_slice[mid].p, triples_[lo + mid].p);
    }
    EXPECT_TRUE(SameTriples(Materialize(raw_slice), Materialize(comp_slice)));
  }
}

TEST_F(IndexRangeTest, RawFetchIsZeroCopyWholeRemainder) {
  // The raw path must keep the old zero-copy span behavior: one Fetch
  // returns the entire remainder aliasing the source array, so cursor
  // loops cost a single extra iteration and no copies.
  std::span<const EncodedTriple> chunk = raw_.Fetch(5, 0, nullptr);
  EXPECT_EQ(chunk.size(), triples_.size() - 5);
  EXPECT_EQ(chunk.data(), triples_.data() + 5);
  std::span<const EncodedTriple> capped = raw_.Fetch(5, 7, nullptr);
  EXPECT_EQ(capped.size(), 7u);
  EXPECT_EQ(capped.data(), triples_.data() + 5);
}

TEST_F(IndexRangeTest, CompressedFetchStopsAtBlockBoundaries) {
  IndexBlockScratch scratch;
  uint64_t pos = 0;
  std::vector<EncodedTriple> seen;
  size_t chunks = 0;
  while (pos < comp_.size()) {
    std::span<const EncodedTriple> chunk = comp_.Fetch(pos, 0, &scratch);
    ASSERT_FALSE(chunk.empty());
    // A chunk never crosses a block seam.
    EXPECT_LE(chunk.size(), kIndexBlockSize - pos % kIndexBlockSize);
    seen.insert(seen.end(), chunk.begin(), chunk.end());
    pos += chunk.size();
    ++chunks;
  }
  EXPECT_GE(chunks, cp_.block_count());
  EXPECT_TRUE(SameTriples(seen, triples_));
}

TEST_F(IndexRangeTest, CursorSeekAndChunkContractOnBothBackings) {
  for (const IndexRange* r : {&raw_, &comp_}) {
    IndexCursor cursor(*r);
    EXPECT_FALSE(cursor.done());
    // Seek to an existing triple: the next chunk must start with it.
    const EncodedTriple target = triples_[triples_.size() / 2];
    cursor.SeekLowerBound(target);
    std::span<const EncodedTriple> chunk = cursor.NextChunk(3);
    ASSERT_EQ(chunk.size(), 3u);
    EXPECT_EQ(chunk[0].s, target.s);
    EXPECT_EQ(chunk[0].p, target.p);
    EXPECT_EQ(chunk[0].o, target.o);
    // Drain the rest; empty chunk <=> done().
    while (!cursor.NextChunk().empty()) {
    }
    EXPECT_TRUE(cursor.done());
    EXPECT_TRUE(cursor.NextChunk().empty());
    // Re-attach resets the position.
    cursor.Attach(*r);
    EXPECT_EQ(cursor.position(), 0u);
    EXPECT_FALSE(cursor.done());
  }
}

TEST_F(IndexRangeTest, SharedScratchSurvivesInterleavedRanges) {
  // One scratch bounced between two different compressed permutations
  // must never serve a stale block: generations differ, so every switch
  // re-decodes.
  CompressedPermutation other =
      CompressedPermutation::Build(triples_, Perm::kSpo);
  ASSERT_NE(other.generation(), cp_.generation());
  IndexRange other_range = IndexRange::FromBlocks(&other, 0, other.size(),
                                                  Perm::kSpo);
  IndexBlockScratch scratch;
  std::mt19937 rng(23);
  for (int i = 0; i < 200; ++i) {
    const uint64_t pos = rng() % triples_.size();
    std::span<const EncodedTriple> a = comp_.Fetch(pos, 1, &scratch);
    ASSERT_EQ(a.size(), 1u);
    EXPECT_EQ(a[0].o, triples_[pos].o);
    std::span<const EncodedTriple> b = other_range.Fetch(pos, 1, &scratch);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(b[0].o, triples_[pos].o);
  }
}

}  // namespace
}  // namespace re2xolap::rdf
