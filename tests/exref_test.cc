#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "core/exref.h"
#include "core/session.h"
#include "sparql/executor.h"
#include "tests/test_data.h"
#include "util/exec_guard.h"

namespace re2xolap::core {
namespace {

using re2xolap::testing::BuildFigure1Store;
using re2xolap::testing::kObsClass;

class ExrefTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store = BuildFigure1Store();
    auto r = VirtualSchemaGraph::Build(*store, kObsClass);
    ASSERT_TRUE(r.ok());
    vsg = std::make_unique<VirtualSchemaGraph>(std::move(r).value());
    text = std::make_unique<rdf::TextIndex>(*store);
    reolap = std::make_unique<Reolap>(store.get(), vsg.get(), text.get());
  }

  // Synthesizes for the example and returns the initial exploration state.
  ExploreState StateFor(std::vector<std::string> values) {
    auto r = reolap->Synthesize(values);
    EXPECT_TRUE(r.ok());
    EXPECT_FALSE(r->empty());
    return InitialState((*r)[0]);
  }

  sparql::ResultTable Exec(const ExploreState& st) {
    auto r = sparql::Execute(*store, st.query);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : sparql::ResultTable();
  }

  std::unique_ptr<rdf::TripleStore> store;
  std::unique_ptr<VirtualSchemaGraph> vsg;
  std::unique_ptr<rdf::TextIndex> text;
  std::unique_ptr<Reolap> reolap;
};

// --- Disaggregate -----------------------------------------------------------

TEST_F(ExrefTest, DisaggregateOffersUnusedPaths) {
  ExploreState st = StateFor({"Germany", "2014"});
  // Query uses: dest (base), refPeriod/inYear. All 6 paths exist; excluded
  // are those two plus none extending upward from dest (dest has no
  // hierarchy here); refPeriod (month, prefix of year path) IS allowed
  // (finer). So offered: age, origin, origin/continent, month = 4.
  std::vector<ExploreState> refs = Disaggregate(*vsg, *store, st);
  EXPECT_EQ(refs.size(), 4u);
  for (const ExploreState& r : refs) {
    EXPECT_EQ(r.extra_columns.size(), 1u);
    EXPECT_EQ(r.query.group_by.size(), 3u);
    EXPECT_EQ(r.paths.size(), 3u);
    EXPECT_FALSE(r.description.empty());
  }
}

TEST_F(ExrefTest, DisaggregateExcludesCoarserLevels) {
  // Start from a month-level query: the year path (extension of month's
  // path) must NOT be offered.
  ExploreState st = StateFor({"October 2014"});
  std::vector<ExploreState> refs = Disaggregate(*vsg, *store, st);
  for (const ExploreState& r : refs) {
    const LevelPath* added = r.paths.back();
    // Added path must not be refPeriod/inYear.
    if (added->predicates.size() == 2) {
      EXPECT_NE(store->term(added->predicates[0]).value,
                "http://test/refPeriod");
    }
  }
  // Offered: age, origin, origin/continent, dest = 4 (not year).
  EXPECT_EQ(refs.size(), 4u);
}

TEST_F(ExrefTest, DisaggregatedQueryIncreasesDimensionsAndSubsumesExample) {
  ExploreState st = StateFor({"Germany", "2014"});
  std::vector<ExploreState> refs = Disaggregate(*vsg, *store, st);
  ASSERT_FALSE(refs.empty());
  sparql::ResultTable base = Exec(st);
  for (const ExploreState& r : refs) {
    sparql::ResultTable t = Exec(r);
    EXPECT_EQ(t.column_count(), base.column_count() + 1);
    // Problem 2a: T_E still subsumed.
    EXPECT_FALSE(ExampleRowIndexes(r, t).empty());
  }
}

TEST_F(ExrefTest, DisaggregateTwiceReachesThreeExtraDims) {
  ExploreState st = StateFor({"Germany"});
  auto refs1 = Disaggregate(*vsg, *store, st);
  ASSERT_FALSE(refs1.empty());
  auto refs2 = Disaggregate(*vsg, *store, refs1[0]);
  ASSERT_FALSE(refs2.empty());
  EXPECT_EQ(refs2[0].extra_columns.size(), 2u);
  EXPECT_LT(refs2.size(), refs1.size() + 1);  // strictly fewer paths left
  Exec(refs2[0]);                             // must still execute fine
}

// --- ExampleRowIndexes --------------------------------------------------------

TEST_F(ExrefTest, ExampleRowIndexesFindsExactRows) {
  ExploreState st = StateFor({"Germany", "2014"});
  sparql::ResultTable t = Exec(st);
  std::vector<size_t> rows = ExampleRowIndexes(st, t);
  ASSERT_EQ(rows.size(), 1u);
  int dcol = t.ColumnIndex(st.example_columns[0]);
  EXPECT_EQ(t.at(rows[0], dcol).term, st.example[0].member);
}

// --- TopK ----------------------------------------------------------------------

TEST_F(ExrefTest, TopKProducesAnchoredCuts) {
  // Single-value example over destination: rows = (DE: 1043), (FR: 120).
  ExploreState st = StateFor({"Germany"});
  sparql::ResultTable t = Exec(st);
  ASSERT_EQ(t.row_count(), 2u);
  auto refs = SubsetTopK(*store, st, t);
  ASSERT_TRUE(refs.ok());
  // Germany is the max: descending cut exists (top-1), ascending cut does
  // not (Germany is last ascending, never followed by a non-example row)...
  // except ascending with cut after Germany is impossible; so per measure
  // column we expect exactly 1 refinement. 4 measure columns => 4.
  EXPECT_EQ(refs->size(), 4u);
  for (const ExploreState& r : *refs) {
    ASSERT_EQ(r.query.having.size(), 1u);
    sparql::ResultTable rt = Exec(r);
    EXPECT_LT(rt.row_count(), t.row_count());
    EXPECT_FALSE(ExampleRowIndexes(r, rt).empty());
  }
}

TEST_F(ExrefTest, TopKEmptyWhenExampleMissing) {
  ExploreState st = StateFor({"Germany"});
  sparql::ResultTable t = Exec(st);
  // Corrupt the example member so nothing matches.
  st.example[0].member = 1;  // some unrelated term id
  auto refs = SubsetTopK(*store, st, t);
  ASSERT_TRUE(refs.ok());
  EXPECT_TRUE(refs->empty());
}

// --- Percentile -------------------------------------------------------------------

TEST_F(ExrefTest, PercentileBandsAnchoredByExample) {
  ExploreState st = StateFor({"Syria"});
  // Rows per origin country: Syria=1023, China=80, Nigeria=60.
  sparql::ResultTable t = Exec(st);
  ASSERT_EQ(t.row_count(), 3u);
  auto refs = SubsetPercentile(*store, st, t);
  ASSERT_TRUE(refs.ok());
  ASSERT_FALSE(refs->empty());
  for (const ExploreState& r : *refs) {
    sparql::ResultTable rt = Exec(r);
    EXPECT_LT(rt.row_count(), t.row_count());  // strict subset
    EXPECT_FALSE(ExampleRowIndexes(r, rt).empty());
  }
}

TEST_F(ExrefTest, PercentileEmptyOnTinyResults) {
  ExploreState st = StateFor({"Germany"});
  sparql::ResultTable t = Exec(st);
  sparql::ResultTable tiny(t.store(), t.columns());
  if (t.row_count() > 0) tiny.AddRow(t.rows()[0]);
  auto refs = SubsetPercentile(*store, st, tiny);
  ASSERT_TRUE(refs.ok());
  EXPECT_TRUE(refs->empty());
}

// --- Similarity --------------------------------------------------------------------

TEST_F(ExrefTest, SimilarityWithFeatureDimensions) {
  // Example (Syria); disaggregate by destination so dest becomes the
  // feature dimension; find origins with similar per-destination profiles.
  ExploreState st = StateFor({"Syria"});
  auto dis = Disaggregate(*vsg, *store, st);
  const ExploreState* with_dest = nullptr;
  for (const ExploreState& d : dis) {
    if (d.extra_columns[0].find("countryDestination") != std::string::npos) {
      with_dest = &d;
    }
  }
  ASSERT_NE(with_dest, nullptr);
  sparql::ResultTable t = Exec(*with_dest);
  SimilarityOptions opts;
  opts.k = 1;
  auto refs = SimilaritySearch(*store, *with_dest, t, opts);
  ASSERT_TRUE(refs.ok()) << refs.status().ToString();
  ASSERT_FALSE(refs->empty());
  for (const ExploreState& r : *refs) {
    ASSERT_EQ(r.query.filters.size(), 1u);
    sparql::ResultTable rt = Exec(r);
    // Keeps the example plus k=1 similar origin: at most 2 origins remain.
    EXPECT_LE(rt.row_count(), t.row_count());
    EXPECT_FALSE(ExampleRowIndexes(r, rt).empty());
  }
}

TEST_F(ExrefTest, SimilarityDegenerateWithoutExtraDims) {
  // No Disaggregate step: similarity falls back to measure closeness.
  ExploreState st = StateFor({"China"});
  sparql::ResultTable t = Exec(st);  // 3 origins
  SimilarityOptions opts;
  opts.k = 1;
  auto refs = SimilaritySearch(*store, st, t, opts);
  ASSERT_TRUE(refs.ok());
  ASSERT_FALSE(refs->empty());
  sparql::ResultTable rt = Exec((*refs)[0]);
  // China (80) plus its closest neighbor Nigeria (60).
  EXPECT_EQ(rt.row_count(), 2u);
  std::vector<size_t> ex = ExampleRowIndexes((*refs)[0], rt);
  EXPECT_EQ(ex.size(), 1u);
}

TEST_F(ExrefTest, SimilarityReportsOnlySumColumns) {
  ExploreState st = StateFor({"China"});
  sparql::ResultTable t = Exec(st);
  auto refs = SimilaritySearch(*store, st, t);
  ASSERT_TRUE(refs.ok());
  // One refinement per sum_ measure column (1 measure -> 1 refinement).
  EXPECT_EQ(refs->size(), 1u);
}

}  // namespace
}  // namespace re2xolap::core

namespace re2xolap::core {
namespace {

using re2xolap::testing::BuildFigure1Store;

class RollUpSliceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store = BuildFigure1Store();
    auto r = VirtualSchemaGraph::Build(*store, re2xolap::testing::kObsClass);
    ASSERT_TRUE(r.ok());
    vsg = std::make_unique<VirtualSchemaGraph>(std::move(r).value());
    text = std::make_unique<rdf::TextIndex>(*store);
    reolap = std::make_unique<Reolap>(store.get(), vsg.get(), text.get());
  }

  ExploreState StateFor(std::vector<std::string> values) {
    auto r = reolap->Synthesize(values);
    EXPECT_TRUE(r.ok());
    EXPECT_FALSE(r->empty());
    return InitialState((*r)[0]);
  }

  sparql::ResultTable Exec(const ExploreState& st) {
    auto r = sparql::Execute(*store, st.query);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : sparql::ResultTable();
  }

  std::unique_ptr<rdf::TripleStore> store;
  std::unique_ptr<VirtualSchemaGraph> vsg;
  std::unique_ptr<rdf::TextIndex> text;
  std::unique_ptr<Reolap> reolap;
};

TEST_F(RollUpSliceTest, RollUpNothingWithoutExtraDims) {
  ExploreState st = StateFor({"Germany"});
  EXPECT_TRUE(RollUp(*vsg, *store, st).empty());
}

TEST_F(RollUpSliceTest, RollUpRemovesDisaggregatedDimension) {
  ExploreState st = StateFor({"Germany"});
  auto dis = Disaggregate(*vsg, *store, st);
  // Pick the disaggregation by origin country (has a coarser continent
  // level).
  const ExploreState* by_origin = nullptr;
  for (const ExploreState& d : dis) {
    if (d.paths.back()->predicates.size() == 1 &&
        store->term(d.paths.back()->predicates[0]).value ==
            "http://test/countryOrigin") {
      by_origin = &d;
    }
  }
  ASSERT_NE(by_origin, nullptr);
  auto rollups = RollUp(*vsg, *store, *by_origin);
  // (a) remove origin; (b) re-aggregate origin at continent level = 2.
  ASSERT_EQ(rollups.size(), 2u);

  // Removal restores the original query's shape.
  sparql::ResultTable base = Exec(st);
  sparql::ResultTable removed = Exec(rollups[0]);
  EXPECT_EQ(removed.column_count(), base.column_count());
  EXPECT_EQ(removed.row_count(), base.row_count());

  // Re-aggregation has the same column count as the disaggregated query
  // but fewer (or equal) rows: continents are coarser than countries.
  sparql::ResultTable fine = Exec(*by_origin);
  sparql::ResultTable coarse = Exec(rollups[1]);
  EXPECT_EQ(coarse.column_count(), fine.column_count());
  EXPECT_LE(coarse.row_count(), fine.row_count());
  // Example is still subsumed in both.
  EXPECT_FALSE(ExampleRowIndexes(rollups[0], removed).empty());
  EXPECT_FALSE(ExampleRowIndexes(rollups[1], coarse).empty());
}

TEST_F(RollUpSliceTest, RollUpInverseOfDisaggregateSums) {
  // SUM is preserved when rolling a dimension up completely.
  ExploreState st = StateFor({"Germany"});
  sparql::ResultTable base = Exec(st);
  auto dis = Disaggregate(*vsg, *store, st);
  ASSERT_FALSE(dis.empty());
  auto rollups = RollUp(*vsg, *store, dis[0]);
  ASSERT_FALSE(rollups.empty());
  sparql::ResultTable restored = Exec(rollups[0]);
  // Same total over the sum column.
  int bc = base.ColumnIndex(st.measure_columns[0]);
  int rc = restored.ColumnIndex(st.measure_columns[0]);
  double bsum = 0, rsum = 0;
  for (size_t i = 0; i < base.row_count(); ++i) {
    bsum += base.NumericValue(base.at(i, bc));
  }
  for (size_t i = 0; i < restored.row_count(); ++i) {
    rsum += restored.NumericValue(restored.at(i, rc));
  }
  EXPECT_DOUBLE_EQ(bsum, rsum);
}

TEST_F(RollUpSliceTest, SliceFixesDimensionAndDropsColumn) {
  ExploreState st = StateFor({"Germany", "2014"});
  sparql::ResultTable before = Exec(st);  // 3 rows
  auto sliced = SliceToExample(*store, st, 0);  // fix Germany
  ASSERT_TRUE(sliced.ok()) << sliced.status().ToString();
  sparql::ResultTable after = Exec(*sliced);
  EXPECT_EQ(after.column_count(), before.column_count() - 1);
  // Only Germany rows remain: (DE,2014), (DE,2015) -> year groups 2.
  EXPECT_EQ(after.row_count(), 2u);
  // The remaining example value (2014) still anchors.
  EXPECT_FALSE(ExampleRowIndexes(*sliced, after).empty());
  EXPECT_EQ(sliced->example_columns.size(), 1u);
}

TEST_F(RollUpSliceTest, SliceGuardsLastExampleColumn) {
  ExploreState st = StateFor({"Germany"});
  EXPECT_FALSE(SliceToExample(*store, st, 0).ok());
  ExploreState st2 = StateFor({"Germany", "2014"});
  EXPECT_FALSE(SliceToExample(*store, st2, 5).ok());
}

TEST_F(RollUpSliceTest, SessionRollUpAndSlice) {
  Session session(store.get(), vsg.get(), text.get());
  ASSERT_TRUE(session.Start({"Germany", "2014"}).ok());
  ASSERT_TRUE(session.PickCandidate(0).ok());
  auto dis = session.Refine(RefinementKind::kDisaggregate);
  ASSERT_TRUE(dis.ok());
  ASSERT_TRUE(session.PickRefinement(0).ok());
  auto rollups = session.Refine(RefinementKind::kRollUp);
  ASSERT_TRUE(rollups.ok());
  EXPECT_FALSE(rollups->empty());
  EXPECT_STREQ(RefinementKindName(RefinementKind::kRollUp), "RollUp");
  ASSERT_TRUE(session.Slice(0).ok());
  auto t = session.Execute();
  ASSERT_TRUE(t.ok());
  session.Back();  // undo slice
  ASSERT_TRUE(session.Execute().ok());
}

// --- graceful degradation under deadlines -----------------------------------

TEST_F(ExrefTest, ExpiredGuardEvaluatesFirstStateAndSkipsTheRest) {
  ExploreState st = StateFor({"Germany", "2014"});
  std::vector<ExploreState> states = Disaggregate(*vsg, *store, st);
  ASSERT_GE(states.size(), 2u);

  util::ExecGuard guard = util::ExecGuard::WithDeadline(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  util::Degradation degradation;
  auto tables =
      EvaluateStates(*store, states, {}, nullptr, nullptr, &guard,
                     &degradation);
  ASSERT_EQ(tables.size(), states.size());
  // Min-progress: the first preview always runs even under an expired
  // deadline; every later one is skipped with the guard's status.
  ASSERT_TRUE(tables[0].ok()) << tables[0].status().ToString();
  EXPECT_GT(tables[0]->row_count(), 0u);
  for (size_t i = 1; i < tables.size(); ++i) {
    ASSERT_FALSE(tables[i].ok()) << "state " << i;
    EXPECT_TRUE(tables[i].status().IsTimeout())
        << tables[i].status().ToString();
  }
  EXPECT_TRUE(degradation.truncated);
  EXPECT_NE(degradation.degraded_reason.find("preview evaluations skipped"),
            std::string::npos)
      << degradation.degraded_reason;
}

TEST_F(ExrefTest, HealthyGuardEvaluatesAllStates) {
  ExploreState st = StateFor({"Germany", "2014"});
  std::vector<ExploreState> states = Disaggregate(*vsg, *store, st);
  util::ExecGuard guard = util::ExecGuard::WithDeadline(60 * 1000);
  util::Degradation degradation;
  auto tables =
      EvaluateStates(*store, states, {}, nullptr, nullptr, &guard,
                     &degradation);
  ASSERT_EQ(tables.size(), states.size());
  for (size_t i = 0; i < tables.size(); ++i) {
    EXPECT_TRUE(tables[i].ok()) << tables[i].status().ToString();
  }
  EXPECT_FALSE(degradation.truncated);
  EXPECT_TRUE(degradation.degraded_reason.empty());
}

}  // namespace
}  // namespace re2xolap::core
