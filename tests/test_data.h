#ifndef RE2XOLAP_TESTS_TEST_DATA_H_
#define RE2XOLAP_TESTS_TEST_DATA_H_

#include <memory>
#include <string>

#include "rdf/triple_store.h"

namespace re2xolap::testing {

/// Builds the tiny, fully hand-written asylum KG mirroring the paper's
/// Figure 1, for precise assertions:
///
///   obs/0: Syria   -> Germany, Oct 2014, age 18-34, 403 applicants
///   obs/1: Syria   -> Germany, Nov 2014, age 18-34, 500 applicants
///   obs/2: Syria   -> France,  Oct 2014, age 18-34, 120 applicants
///   obs/3: China   -> Germany, Oct 2014, age 35-49,  80 applicants
///   obs/4: Nigeria -> Germany, Jan 2015, age 18-34,  60 applicants
///
/// Hierarchies: country-origin -> continent (Syria,China -> Asia;
/// Nigeria -> Africa), month -> year (Oct/Nov 2014 -> 2014, Jan 2015 ->
/// 2015). Destination countries have no hierarchy. All members carry
/// rdfs:label.
inline constexpr char kBase[] = "http://test/";
inline constexpr char kObsClass[] = "http://test/Observation";
inline constexpr char kTypeIri[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr char kLabelIri[] =
    "http://www.w3.org/2000/01/rdf-schema#label";

inline std::unique_ptr<rdf::TripleStore> BuildFigure1Store() {
  using rdf::Term;
  auto store = std::make_unique<rdf::TripleStore>();
  auto iri = [](const std::string& local) {
    return Term::Iri(std::string(kBase) + local);
  };
  const Term type = Term::Iri(kTypeIri);
  const Term label = Term::Iri(kLabelIri);
  const Term obs_class = Term::Iri(kObsClass);
  const Term p_origin = iri("countryOrigin");
  const Term p_dest = iri("countryDestination");
  const Term p_month = iri("refPeriod");
  const Term p_age = iri("age");
  const Term p_measure = iri("numApplicants");
  const Term p_continent = iri("inContinent");
  const Term p_year = iri("inYear");

  // Dimension members + labels.
  auto labeled = [&](const std::string& local, const std::string& text) {
    Term t = iri(local);
    store->Add(t, label, Term::StringLiteral(text));
    return t;
  };
  Term syria = labeled("origin/syria", "Syria");
  Term china = labeled("origin/china", "China");
  Term nigeria = labeled("origin/nigeria", "Nigeria");
  Term asia = labeled("continent/asia", "Asia");
  Term africa = labeled("continent/africa", "Africa");
  Term germany = labeled("dest/germany", "Germany");
  Term france = labeled("dest/france", "France");
  Term oct14 = labeled("month/2014-10", "October 2014");
  Term nov14 = labeled("month/2014-11", "November 2014");
  Term jan15 = labeled("month/2015-01", "January 2015");
  Term y2014 = labeled("year/2014", "2014");
  Term y2015 = labeled("year/2015", "2015");
  Term age1834 = labeled("age/18-34", "18-34");
  Term age3549 = labeled("age/35-49", "35-49");

  // Hierarchies.
  store->Add(syria, p_continent, asia);
  store->Add(china, p_continent, asia);
  store->Add(nigeria, p_continent, africa);
  store->Add(oct14, p_year, y2014);
  store->Add(nov14, p_year, y2014);
  store->Add(jan15, p_year, y2015);

  struct Obs {
    Term origin, dest, month, age;
    int64_t value;
  };
  const Obs observations[] = {
      {syria, germany, oct14, age1834, 403},
      {syria, germany, nov14, age1834, 500},
      {syria, france, oct14, age1834, 120},
      {china, germany, oct14, age3549, 80},
      {nigeria, germany, jan15, age1834, 60},
  };
  int n = 0;
  for (const Obs& o : observations) {
    Term obs = iri("obs/" + std::to_string(n++));
    store->Add(obs, type, obs_class);
    store->Add(obs, p_origin, o.origin);
    store->Add(obs, p_dest, o.dest);
    store->Add(obs, p_month, o.month);
    store->Add(obs, p_age, o.age);
    store->Add(obs, p_measure, Term::IntegerLiteral(o.value));
  }
  store->Freeze();
  return store;
}

}  // namespace re2xolap::testing

#endif  // RE2XOLAP_TESTS_TEST_DATA_H_
