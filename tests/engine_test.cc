// QueryEngine layer: plan/result caching, freeze-epoch invalidation, LRU
// eviction under a byte budget, and the concurrency contract (exercised
// under TSan by the stress tests; see .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/reolap.h"
#include "core/virtual_schema_graph.h"
#include "engine/query_engine.h"
#include "obs/metrics.h"
#include "rdf/text_index.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "tests/test_data.h"
#include "util/exec_guard.h"
#include "util/failpoint.h"

namespace re2xolap::engine {
namespace {

using re2xolap::testing::BuildFigure1Store;
using re2xolap::testing::kObsClass;

constexpr char kObsQuery[] =
    "SELECT ?obs WHERE { ?obs a <http://test/Observation> }";

std::string ThresholdQuery(int threshold) {
  return "SELECT ?obs WHERE { ?obs <http://test/numApplicants> ?v . "
         "FILTER (?v >= " +
         std::to_string(threshold) + ") }";
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override { store = BuildFigure1Store(); }

  std::unique_ptr<rdf::TripleStore> store;
};

TEST_F(EngineTest, ResultCacheHitReturnsSameTable) {
  QueryEngine engine(*store);
  auto first = engine.ExecuteText(kObsQuery);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ((*first)->row_count(), 5u);

  auto second = engine.ExecuteText(kObsQuery);
  ASSERT_TRUE(second.ok());
  // A hit hands out the same immutable table, not a copy.
  EXPECT_EQ(first->get(), second->get());

  EngineCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.result_hits, 1u);
  EXPECT_EQ(stats.result_misses, 1u);
  EXPECT_EQ(stats.result_entries, 1u);
  EXPECT_GT(stats.result_bytes, 0u);
}

TEST_F(EngineTest, ResultCacheHitZeroesExecStats) {
  QueryEngine engine(*store);
  sparql::ExecStats miss_stats;
  ASSERT_TRUE(engine.ExecuteText(kObsQuery, {}, &miss_stats).ok());
  EXPECT_GT(miss_stats.triples_scanned, 0u);

  sparql::ExecStats hit_stats;
  ASSERT_TRUE(engine.ExecuteText(kObsQuery, {}, &hit_stats).ok());
  // A hit scans nothing and plans nothing.
  EXPECT_EQ(hit_stats.triples_scanned, 0u);
  EXPECT_EQ(hit_stats.intermediate_bindings, 0u);
  EXPECT_DOUBLE_EQ(hit_stats.plan_millis, 0.0);
}

TEST_F(EngineTest, PlanCacheHitSkipsPlanning) {
  // Disable the result cache so the second Execute reaches planning.
  EngineConfig config;
  config.result_cache_bytes = 0;
  QueryEngine engine(*store, config);

  auto parsed = sparql::ParseQuery(kObsQuery);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(engine.Execute(*parsed).ok());
  ASSERT_TRUE(engine.Execute(*parsed).ok());

  EngineCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.plan_hits, 1u);
  EXPECT_EQ(stats.plan_misses, 1u);
  EXPECT_EQ(stats.plan_entries, 1u);
  EXPECT_EQ(stats.result_hits, 0u);  // result cache disabled
}

TEST_F(EngineTest, ProfiledRunsBypassResultCache) {
  QueryEngine engine(*store);
  ASSERT_TRUE(engine.ExecuteText(kObsQuery).ok());

  sparql::ExecOptions profiled;
  profiled.profile = true;
  sparql::ExecStats stats;
  ASSERT_TRUE(engine.ExecuteText(kObsQuery, profiled, &stats).ok());
  // EXPLAIN ANALYZE observed a real execution despite the warm cache.
  EXPECT_GT(stats.triples_scanned, 0u);
  EXPECT_EQ(engine.cache_stats().result_hits, 0u);
}

TEST_F(EngineTest, RefreezeInvalidatesCachesAndServesNewData) {
  QueryEngine engine(*store);
  const uint64_t epoch0 = store->freeze_epoch();
  auto first = engine.ExecuteText(kObsQuery);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ((*first)->row_count(), 5u);
  ASSERT_TRUE(engine.ExecuteText(kObsQuery).ok());
  ASSERT_EQ(engine.cache_stats().result_hits, 1u);

  // New observation becomes visible only through a re-Freeze().
  using rdf::Term;
  Term obs = Term::Iri("http://test/obs/99");
  store->Add(obs, Term::Iri(re2xolap::testing::kTypeIri),
             Term::Iri(kObsClass));
  store->Freeze();
  EXPECT_GT(store->freeze_epoch(), epoch0);

  auto after = engine.ExecuteText(kObsQuery);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)->row_count(), 6u);

  EngineCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.result_hits, 1u);    // no stale hit after the epoch bump
  EXPECT_EQ(stats.result_entries, 1u);  // old entries were dropped
  EXPECT_EQ(stats.plan_entries, 1u);
}

TEST_F(EngineTest, ExplicitInvalidateDropsEverything) {
  QueryEngine engine(*store);
  ASSERT_TRUE(engine.ExecuteText(kObsQuery).ok());
  ASSERT_GT(engine.cache_stats().result_entries, 0u);

  engine.InvalidateCaches();
  EngineCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.result_entries, 0u);
  EXPECT_EQ(stats.result_bytes, 0u);
  EXPECT_EQ(stats.plan_entries, 0u);
}

TEST_F(EngineTest, LruEvictsUnderTinyByteBudget) {
  // Size the budget off a real table so the test tracks the cost model:
  // room for about two entries in a single shard.
  auto probe = sparql::ExecuteText(*store, ThresholdQuery(0));
  ASSERT_TRUE(probe.ok());
  const size_t cost = EstimateTableCost(*probe);
  ASSERT_GT(cost, 0u);

  EngineConfig config;
  config.result_cache_shards = 1;
  config.result_cache_bytes = 5 * cost / 2;
  QueryEngine engine(*store, config);

  for (int t = 0; t < 6; ++t) {
    ASSERT_TRUE(engine.ExecuteText(ThresholdQuery(t)).ok());
  }
  EngineCacheStats stats = engine.cache_stats();
  EXPECT_GT(stats.result_evictions, 0u);
  EXPECT_LE(stats.result_bytes, config.result_cache_bytes);
  EXPECT_LT(stats.result_entries, 6u);

  // The most recent query must still be resident.
  ASSERT_TRUE(engine.ExecuteText(ThresholdQuery(5)).ok());
  EXPECT_EQ(engine.cache_stats().result_hits, 1u);
}

TEST_F(EngineTest, OversizedEntriesAreNotAdmitted) {
  auto probe = sparql::ExecuteText(*store, kObsQuery);
  ASSERT_TRUE(probe.ok());

  EngineConfig config;
  config.result_cache_shards = 1;
  config.result_cache_bytes = EstimateTableCost(*probe) / 2;
  QueryEngine engine(*store, config);

  ASSERT_TRUE(engine.ExecuteText(kObsQuery).ok());
  ASSERT_TRUE(engine.ExecuteText(kObsQuery).ok());
  EngineCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.result_entries, 0u);
  EXPECT_EQ(stats.result_hits, 0u);
  EXPECT_EQ(stats.result_misses, 2u);
}

TEST_F(EngineTest, ErrorsAreNeverCached) {
  QueryEngine engine(*store);
  // ORDER BY over an unprojected column fails at execution time, after
  // the cache key was formed — the failure must not be memoized.
  const std::string bad =
      "SELECT ?obs WHERE { ?obs a <http://test/Observation> } "
      "ORDER BY ?nonexistent";
  auto r = engine.ExecuteText(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(engine.cache_stats().result_entries, 0u);

  // A later healthy run must execute for real and succeed.
  auto ok = engine.ExecuteText(kObsQuery);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)->row_count(), 5u);
}

// --- ValidateCombo through the engine -------------------------------------

class EngineReolapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store = BuildFigure1Store();
    auto r = core::VirtualSchemaGraph::Build(*store, kObsClass);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    vsg = std::make_unique<core::VirtualSchemaGraph>(std::move(r).value());
    text = std::make_unique<rdf::TextIndex>(*store);
  }

  std::unique_ptr<rdf::TripleStore> store;
  std::unique_ptr<core::VirtualSchemaGraph> vsg;
  std::unique_ptr<rdf::TextIndex> text;
};

TEST_F(EngineReolapTest, SecondValidationOfIdenticalComboIsCacheHit) {
  QueryEngine engine(*store);
  core::Reolap reolap(store.get(), vsg.get(), text.get(), &engine);

  obs::Counter& global_hits =
      obs::MetricsRegistry::Global().GetCounter("engine.result_cache.hits");
  const uint64_t global_before = global_hits.value();

  auto first = reolap.Synthesize({"Germany", "2014"});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_FALSE(first->empty());
  const uint64_t hits_after_first = engine.cache_stats().result_hits;
  const uint64_t misses_after_first = engine.cache_stats().result_misses;

  // The same input re-validates the identical interpretation combos: every
  // probe is a repeat, so the second synthesis is served from the cache.
  auto second = reolap.Synthesize({"Germany", "2014"});
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->size(), second->size());

  EngineCacheStats stats = engine.cache_stats();
  EXPECT_GT(stats.result_hits, hits_after_first);
  EXPECT_EQ(stats.result_misses, misses_after_first);  // no new misses
  // The global metrics registry observed the same hits.
  EXPECT_GE(global_hits.value() - global_before,
            stats.result_hits - hits_after_first);
}

TEST_F(EngineReolapTest, EngineAndDirectPathsProduceIdenticalCandidates) {
  QueryEngine engine(*store);
  core::Reolap cached(store.get(), vsg.get(), text.get(), &engine);
  core::Reolap direct(store.get(), vsg.get(), text.get());

  auto a = cached.Synthesize({"Germany", "2014"});
  auto b = direct.Synthesize({"Germany", "2014"});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].description, (*b)[i].description);
    EXPECT_EQ(sparql::ToSparql((*a)[i].query),
              sparql::ToSparql((*b)[i].query));
  }
}

// --- Concurrency (meaningful under TSan) ----------------------------------

TEST_F(EngineTest, ConcurrentHitMissEvictStress) {
  // A budget around two entries keeps all three code paths hot: hits,
  // misses, and evictions race across four threads on one shard.
  auto probe = sparql::ExecuteText(*store, ThresholdQuery(0));
  ASSERT_TRUE(probe.ok());
  EngineConfig config;
  config.result_cache_shards = 1;
  config.result_cache_bytes = 5 * EstimateTableCost(*probe) / 2;
  QueryEngine engine(*store, config);

  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 40;
  std::vector<std::thread> workers;
  std::vector<int> failures(kThreads, 0);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kItersPerThread; ++i) {
        // Each thread cycles a window of queries overlapping its
        // neighbours', forcing shared entries plus steady eviction churn.
        auto r = engine.ExecuteText(ThresholdQuery((w + i) % 6));
        if (!r.ok() || (*r)->row_count() > 5u) ++failures[w];
      }
    });
  }
  for (auto& t : workers) t.join();
  for (int w = 0; w < kThreads; ++w) EXPECT_EQ(failures[w], 0) << w;

  EngineCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.result_hits + stats.result_misses,
            static_cast<uint64_t>(kThreads * kItersPerThread));
  EXPECT_LE(stats.result_bytes, config.result_cache_bytes);
}

TEST_F(EngineReolapTest, ConcurrentValidationThreadsShareOneEngine) {
  QueryEngine engine(*store);
  core::Reolap reolap(store.get(), vsg.get(), text.get(), &engine);

  // Warm the cache serially, then fan the identical synthesis out over the
  // parallel validation path (ParallelFor probes) and over plain threads —
  // every probe races hit/miss/insert on the shared shards.
  auto serial = reolap.Synthesize({"Germany", "2014"});
  ASSERT_TRUE(serial.ok());

  core::ReolapOptions parallel_opts;
  parallel_opts.num_threads = 4;

  constexpr int kThreads = 3;
  std::vector<std::thread> workers;
  std::vector<int> failures(kThreads, 0);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < 5; ++i) {
        auto r = reolap.Synthesize({"Germany", "2014"}, parallel_opts);
        if (!r.ok() || r->size() != serial->size()) ++failures[w];
      }
    });
  }
  for (auto& t : workers) t.join();
  for (int w = 0; w < kThreads; ++w) EXPECT_EQ(failures[w], 0) << w;
  EXPECT_GT(engine.cache_stats().result_hits, 0u);
}

// --- execution guardrails & fault injection ---------------------------------------

/// Replaces whatever the environment armed (e.g. the chaos CI job's
/// RE2XOLAP_FAILPOINTS) with a per-test configuration, so these tests are
/// deterministic under fault injection too.
class EngineFailpointTest : public EngineTest {
 protected:
  void SetUp() override {
    EngineTest::SetUp();
    util::FailpointRegistry::Global().DisarmAll();
  }
  void TearDown() override { util::FailpointRegistry::Global().DisarmAll(); }
};

TEST_F(EngineFailpointTest, TransientInjectedErrorsAreRetriedAway) {
  ASSERT_TRUE(util::FailpointRegistry::Global()
                  .Configure("engine.execute=error*2")
                  .ok());
  obs::Counter& retries_metric =
      obs::MetricsRegistry::Global().GetCounter("engine.retries");
  const uint64_t retries_before = retries_metric.value();

  QueryEngine engine(*store);  // default config: two transient retries
  auto r = engine.ExecuteText(kObsQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->row_count(), 5u);

  EngineCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.retries, 2u);
  // Cache lookups run once per logical Execute, retries notwithstanding.
  EXPECT_EQ(stats.result_misses, 1u);
  EXPECT_EQ(stats.result_hits, 0u);
  EXPECT_EQ(retries_metric.value(), retries_before + 2);
}

TEST_F(EngineFailpointTest, RetryBudgetExhaustionSurfacesTheError) {
  ASSERT_TRUE(util::FailpointRegistry::Global()
                  .Configure("engine.execute=error*9")
                  .ok());
  EngineConfig config;
  config.max_transient_retries = 1;
  config.retry_backoff_millis = 0;
  QueryEngine engine(*store, config);
  auto r = engine.ExecuteText(kObsQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
  EXPECT_EQ(engine.cache_stats().retries, 1u);
  // Failures are never cached.
  EXPECT_EQ(engine.cache_stats().result_entries, 0u);

  // Once the fault clears, the same query executes and caches normally.
  util::FailpointRegistry::Global().DisarmAll();
  auto ok = engine.ExecuteText(kObsQuery);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EngineCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.result_hits, 0u);
  EXPECT_EQ(stats.result_misses, 2u);
  EXPECT_EQ(stats.result_entries, 1u);
}

TEST_F(EngineFailpointTest, CacheInsertSkipKeepsResultsUncached) {
  ASSERT_TRUE(
      util::FailpointRegistry::Global().Configure("cache.insert=skip").ok());
  QueryEngine engine(*store);
  auto first = engine.ExecuteText(kObsQuery);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = engine.ExecuteText(kObsQuery);
  ASSERT_TRUE(second.ok());
  // Execution still works, but nothing was retained: both runs miss.
  EXPECT_EQ((*first)->row_count(), (*second)->row_count());
  EngineCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.result_hits, 0u);
  EXPECT_EQ(stats.result_misses, 2u);
  EXPECT_EQ(stats.result_entries, 0u);
}

TEST_F(EngineTest, ExpiredGuardRejectsBeforeCacheProbe) {
  QueryEngine engine(*store);
  util::ExecGuard guard = util::ExecGuard::WithDeadline(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  sparql::ExecOptions opts;
  opts.guard = &guard;
  auto r = engine.ExecuteText(kObsQuery, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTimeout()) << r.status().ToString();
  // The dead request did no work: no cache probe, nothing cached.
  EngineCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.result_hits, 0u);
  EXPECT_EQ(stats.result_misses, 0u);
  EXPECT_EQ(stats.result_entries, 0u);

  // The same query without the guard is a plain first miss.
  auto ok = engine.ExecuteText(kObsQuery);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(engine.cache_stats().result_misses, 1u);
}

}  // namespace
}  // namespace re2xolap::engine
