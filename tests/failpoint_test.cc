#include "util/failpoint.h"

#include <gtest/gtest.h>

#include "util/timer.h"

namespace re2xolap::util {
namespace {

/// Every test leaves the process-global registry clean; the fixture makes
/// that explicit (and robust against mid-test failures).
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Global().DisarmAll(); }
  void TearDown() override { FailpointRegistry::Global().DisarmAll(); }
};

TEST_F(FailpointTest, DisarmedRegistryFastPath) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  EXPECT_FALSE(reg.any_armed());
  EXPECT_EQ(reg.Evaluate("store.scan").kind, FailpointKind::kOff);
  EXPECT_TRUE(FailpointStatus("store.scan").ok());
  EXPECT_FALSE(FailpointSkip("cache.insert"));
}

TEST_F(FailpointTest, ConfigureParsesTheDocumentedGrammar) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("engine.execute=error;store.scan=delay:50ms;"
                            "cache.insert=skip;pool.task=off")
                  .ok());
  EXPECT_TRUE(reg.any_armed());

  FailpointAction a = reg.Evaluate("engine.execute");
  EXPECT_EQ(a.kind, FailpointKind::kError);
  a = reg.Evaluate("store.scan");
  EXPECT_EQ(a.kind, FailpointKind::kDelay);
  EXPECT_EQ(a.delay_millis, 50u);
  a = reg.Evaluate("cache.insert");
  EXPECT_EQ(a.kind, FailpointKind::kSkip);
  a = reg.Evaluate("pool.task");
  EXPECT_EQ(a.kind, FailpointKind::kOff);
}

TEST_F(FailpointTest, BadSpecIsRejectedWithoutApplyingAnything) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  EXPECT_FALSE(reg.Configure("store.scan=error;bogus").ok());
  EXPECT_FALSE(reg.Configure("store.scan=explode").ok());
  EXPECT_FALSE(reg.Configure("store.scan=delay:abc").ok());
  // Nothing was applied by the failed calls.
  EXPECT_FALSE(reg.any_armed());
}

TEST_F(FailpointTest, FireBudgetSelfDisarms) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("engine.execute=error*2").ok());
  EXPECT_EQ(reg.Evaluate("engine.execute").kind, FailpointKind::kError);
  EXPECT_EQ(reg.Evaluate("engine.execute").kind, FailpointKind::kError);
  // Budget exhausted: the point disarmed itself.
  EXPECT_EQ(reg.Evaluate("engine.execute").kind, FailpointKind::kOff);
  EXPECT_FALSE(reg.any_armed());
  EXPECT_EQ(reg.hits("engine.execute"), 2u);
}

TEST_F(FailpointTest, StatusHelperReturnsTransientError) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("engine.execute=error").ok());
  Status st = FailpointStatus("engine.execute");
  ASSERT_FALSE(st.ok());
  // Injected errors are transient: the engine's retry loop must see
  // kUnavailable, nothing else.
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  // Other sites stay clean.
  EXPECT_TRUE(FailpointStatus("store.scan").ok());
}

TEST_F(FailpointTest, SkipHelper) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("cache.insert=skip*1").ok());
  EXPECT_TRUE(FailpointSkip("cache.insert"));
  EXPECT_FALSE(FailpointSkip("cache.insert"));  // budget consumed
}

TEST_F(FailpointTest, DelayHelperSleeps) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("pool.task=delay:20").ok());
  WallTimer timer;
  FailpointPause("pool.task");
  EXPECT_GE(timer.ElapsedMillis(), 15.0);  // scheduling slop tolerated
}

TEST_F(FailpointTest, ArmReplacesAndDisarmRemoves) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  FailpointAction err;
  err.kind = FailpointKind::kError;
  reg.Arm("store.scan", err);
  EXPECT_TRUE(reg.any_armed());
  EXPECT_EQ(reg.Evaluate("store.scan").kind, FailpointKind::kError);

  FailpointAction delay;
  delay.kind = FailpointKind::kDelay;
  delay.delay_millis = 1;
  reg.Arm("store.scan", delay);
  EXPECT_EQ(reg.Evaluate("store.scan").kind, FailpointKind::kDelay);

  reg.Disarm("store.scan");
  EXPECT_EQ(reg.Evaluate("store.scan").kind, FailpointKind::kOff);
  EXPECT_FALSE(reg.any_armed());
}

TEST_F(FailpointTest, HitsAccumulateAcrossEvaluations) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  ASSERT_TRUE(reg.Configure("store.scan=error").ok());
  const uint64_t before = reg.hits("store.scan");
  for (int i = 0; i < 3; ++i) reg.Evaluate("store.scan");
  EXPECT_EQ(reg.hits("store.scan"), before + 3);
}

}  // namespace
}  // namespace re2xolap::util
