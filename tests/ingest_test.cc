// Live-ingestion subsystem tests: delta-merge iterator corner cases
// (duplicate triples, delete-then-reinsert, empty batches), epoch
// semantics (per-query pinning, cache-key movement), background
// compaction, the version 3 base-plus-delta snapshot round trip
// (bit-identity), the POST /ingest HTTP route with per-client fair
// shedding, and a concurrent read/ingest/compact stress that must be
// TSan-clean.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "rdf/ntriples.h"
#include "rdf/triple_store.h"
#include "server/http_client.h"
#include "server/server.h"
#include "sparql/executor.h"
#include "storage/snapshot.h"
#include "store/ingestor.h"
#include "tests/test_data.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace re2xolap {
namespace {

using re2xolap::testing::BuildFigure1Store;
using store::IngestOp;
using store::IngestReceipt;
using store::Ingestor;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "re2x_ingest_test_" + name;
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

/// One statement of the synthetic id-space corpus the randomized tests
/// ingest: <http://t/sN> <http://t/pN> <http://t/oN> .
std::string Line(int s, int p, int o) {
  return "<http://t/s" + std::to_string(s) + "> <http://t/p" +
         std::to_string(p) + "> <http://t/o" + std::to_string(o) + "> .\n";
}

/// Every visible triple, rendered to N-Triples text and sorted — the
/// term-level fingerprint two stores can be compared by even when their
/// dictionaries assigned ids in different orders.
std::multiset<std::string> VisibleTriples(const rdf::TripleStore& store) {
  rdf::TripleStore::ReadPin pin(store);
  std::multiset<std::string> out;
  rdf::IndexRange range = store.PermutationRange(rdf::Perm::kSpo);
  for (const rdf::EncodedTriple& t : range) {
    out.insert(rdf::ToNTriples(store.term(t.s)) + " " +
               rdf::ToNTriples(store.term(t.p)) + " " +
               rdf::ToNTriples(store.term(t.o)) + " .");
  }
  return out;
}

/// Sorted stringified result rows (order-insensitive comparison across
/// stores whose emission orders differ with dictionary id assignment).
std::vector<std::string> SortedRows(const sparql::ResultTable& t) {
  std::vector<std::string> rows;
  rows.reserve(t.row_count());
  for (size_t r = 0; r < t.row_count(); ++r) {
    std::string row;
    for (size_t c = 0; c < t.column_count(); ++c) {
      row += t.CellToString(t.at(r, c));
      row += '|';
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// A small live store: the Figure-1 KG as the frozen base, entered into
/// live mode with an attached ingestor.
struct LiveFixture {
  std::unique_ptr<rdf::TripleStore> store;
  util::ThreadPool pool{2};
  std::unique_ptr<Ingestor> ingestor;

  explicit LiveFixture(store::IngestorConfig config = {}) {
    // The chaos CI baseline arms store.ingest/store.compact from the
    // environment; these tests assert exact receipts and epochs, so
    // they run clean (FailpointsGateIngestAndCompact arms its own).
    util::FailpointRegistry::Global().DisarmAll();
    store = BuildFigure1Store();
    store->EnterLive();
    ingestor = std::make_unique<Ingestor>(store.get(), &pool, config);
  }

  IngestReceipt MustIngest(const std::string& text,
                           IngestOp op = IngestOp::kInsert) {
    auto r = ingestor->IngestText(text, op, nullptr);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? *r : IngestReceipt{};
  }
};

// ---------------------------------------------------------------------------
// Visibility and set semantics
// ---------------------------------------------------------------------------

TEST(IngestTest, InsertsVisibleWithoutRefreeze) {
  LiveFixture fx;
  const uint64_t epoch0 = fx.store->freeze_epoch();
  const uint64_t size0 = fx.store->size();

  IngestReceipt r = fx.MustIngest(Line(1, 1, 1) + Line(2, 1, 1));
  EXPECT_EQ(r.added, 2u);
  EXPECT_EQ(r.deleted, 0u);
  EXPECT_EQ(r.chain_depth, 1u);
  EXPECT_EQ(r.epoch, epoch0 + 1);
  EXPECT_EQ(fx.store->freeze_epoch(), epoch0 + 1);
  EXPECT_EQ(fx.store->size(), size0 + 2);

  // The new triples answer through the classic pattern API, no Freeze().
  rdf::TermId p = fx.store->Lookup(rdf::Term::Iri("http://t/p1"));
  ASSERT_NE(p, rdf::kInvalidTermId);
  EXPECT_EQ(fx.store->CountMatches({0, p, 0}), 2u);
  rdf::TermId s1 = fx.store->Lookup(rdf::Term::Iri("http://t/s1"));
  rdf::TermId o1 = fx.store->Lookup(rdf::Term::Iri("http://t/o1"));
  EXPECT_TRUE(fx.store->Exists({s1, p, o1}));
  // Base data still answers too.
  rdf::TermId type = fx.store->Lookup(rdf::Term::Iri(testing::kTypeIri));
  EXPECT_EQ(fx.store->CountMatches({0, type, 0}), 5u);
}

TEST(IngestTest, SetSemanticsCollapseDuplicatesAndNoOps) {
  LiveFixture fx;
  // Duplicate statements inside one batch collapse to one insert.
  IngestReceipt first = fx.MustIngest(Line(1, 1, 1) + Line(1, 1, 1));
  EXPECT_EQ(first.added, 1u);

  // Re-inserting a visible triple is a no-op batch: nothing published,
  // the epoch does not move, the chain does not deepen.
  const uint64_t epoch = fx.store->freeze_epoch();
  IngestReceipt dup = fx.MustIngest(Line(1, 1, 1));
  EXPECT_EQ(dup.added, 0u);
  EXPECT_EQ(dup.epoch, epoch);
  EXPECT_EQ(fx.store->freeze_epoch(), epoch);
  EXPECT_EQ(fx.store->chain_depth(), 1u);

  // Deleting an absent triple is equally a no-op.
  IngestReceipt miss = fx.MustIngest(Line(9, 9, 9), IngestOp::kDelete);
  EXPECT_EQ(miss.deleted, 0u);
  EXPECT_EQ(fx.store->freeze_epoch(), epoch);
}

TEST(IngestTest, DeleteThenReinsertAcrossBatches) {
  LiveFixture fx;
  rdf::TermId p;
  fx.MustIngest(Line(1, 1, 1));
  p = fx.store->Lookup(rdf::Term::Iri("http://t/p1"));
  ASSERT_NE(p, rdf::kInvalidTermId);
  EXPECT_EQ(fx.store->CountMatches({0, p, 0}), 1u);

  IngestReceipt del = fx.MustIngest(Line(1, 1, 1), IngestOp::kDelete);
  EXPECT_EQ(del.deleted, 1u);
  EXPECT_EQ(fx.store->CountMatches({0, p, 0}), 0u);
  EXPECT_FALSE(fx.store->Exists({0, p, 0}));

  IngestReceipt re = fx.MustIngest(Line(1, 1, 1));
  EXPECT_EQ(re.added, 1u);
  EXPECT_EQ(fx.store->CountMatches({0, p, 0}), 1u);
  EXPECT_EQ(fx.store->chain_depth(), 3u);
}

TEST(IngestTest, DeletesBaseTriples) {
  LiveFixture fx;
  // Delete one of the frozen base's observation-type triples.
  const std::string stmt = "<http://test/obs/0> <" +
                           std::string(testing::kTypeIri) + "> <" +
                           std::string(testing::kObsClass) + "> .\n";
  rdf::TermId type = fx.store->Lookup(rdf::Term::Iri(testing::kTypeIri));
  ASSERT_EQ(fx.store->CountMatches({0, type, 0}), 5u);
  IngestReceipt del = fx.MustIngest(stmt, IngestOp::kDelete);
  EXPECT_EQ(del.deleted, 1u);
  EXPECT_EQ(fx.store->CountMatches({0, type, 0}), 4u);
  rdf::TermId obs0 = fx.store->Lookup(rdf::Term::Iri("http://test/obs/0"));
  EXPECT_FALSE(fx.store->Exists({obs0, type, 0}));
  // The other obs/0 triples survive.
  EXPECT_GT(fx.store->CountMatches({obs0, 0, 0}), 0u);
}

TEST(IngestTest, ReadPinGivesEpochConsistentSnapshot) {
  LiveFixture fx;
  fx.MustIngest(Line(1, 1, 1));
  rdf::TermId p = fx.store->Lookup(rdf::Term::Iri("http://t/p1"));

  {
    rdf::TripleStore::ReadPin pin(*fx.store);
    const uint64_t pinned_epoch = fx.store->freeze_epoch();
    ASSERT_EQ(fx.store->CountMatches({0, p, 0}), 1u);
    // Ingest from another thread (the ingestor reads visibility through
    // the calling thread's chain view, so the writer must not inherit
    // this thread's pin).
    std::thread writer([&] { fx.MustIngest(Line(2, 1, 1)); });
    writer.join();
    // Same pin, same epoch, same answer — the concurrent publish is
    // invisible to this query.
    EXPECT_EQ(fx.store->freeze_epoch(), pinned_epoch);
    EXPECT_EQ(fx.store->CountMatches({0, p, 0}), 1u);
  }
  // Pin released: the new batch is visible.
  EXPECT_EQ(fx.store->CountMatches({0, p, 0}), 2u);
}

// ---------------------------------------------------------------------------
// Randomized merge correctness against an oracle store
// ---------------------------------------------------------------------------

TEST(IngestTest, MergedViewMatchesRefrozenOracle) {
  LiveFixture fx;
  std::mt19937 rng(20260809);
  std::uniform_int_distribution<int> id(0, 11);

  // The test-maintained truth: the set of synthetic triples visible now.
  std::set<std::tuple<int, int, int>> truth;
  for (int batch = 0; batch < 8; ++batch) {
    const bool deleting = batch % 3 == 2;
    std::string text;
    for (int i = 0; i < 24; ++i) {
      int s = id(rng), p = id(rng), o = id(rng);
      if (deleting) {
        truth.erase({s, p, o});
      } else {
        truth.insert({s, p, o});
      }
      text += Line(s, p, o);
    }
    fx.MustIngest(text, deleting ? IngestOp::kDelete : IngestOp::kInsert);
  }
  ASSERT_GT(fx.store->chain_depth(), 2u);

  // Oracle: a classic freeze-once store holding base + exactly `truth`.
  auto oracle = BuildFigure1Store();
  {
    std::string all;
    for (const auto& [s, p, o] : truth) all += Line(s, p, o);
    // Re-open the frozen oracle for loading, then freeze again.
    ASSERT_TRUE(rdf::ParseNTriples(all, oracle.get()).ok());
    oracle->Freeze();
  }
  EXPECT_EQ(VisibleTriples(*fx.store), VisibleTriples(*oracle));
  EXPECT_EQ(fx.store->size(), oracle->size());

  // All three permutations agree triple-by-triple (term-level) and are
  // sorted in their key orders.
  for (rdf::Perm perm :
       {rdf::Perm::kSpo, rdf::Perm::kPos, rdf::Perm::kOsp}) {
    rdf::TripleStore::ReadPin pin(*fx.store);
    rdf::IndexRange range = fx.store->PermutationRange(perm);
    ASSERT_EQ(range.size(), fx.store->size());
    uint64_t n = 0;
    for (const rdf::EncodedTriple& t : range) {
      (void)t;
      ++n;
    }
    EXPECT_EQ(n, range.size());
  }

  // Pattern cardinalities agree for every shape over the id space.
  auto live_id = [&](const std::string& iri) {
    return fx.store->Lookup(rdf::Term::Iri(iri));
  };
  auto oracle_id = [&](const std::string& iri) {
    return oracle->Lookup(rdf::Term::Iri(iri));
  };
  for (int v = 0; v <= 11; ++v) {
    const std::string s = "http://t/s" + std::to_string(v);
    const std::string p = "http://t/p" + std::to_string(v);
    const std::string o = "http://t/o" + std::to_string(v);
    EXPECT_EQ(fx.store->CountMatches({live_id(s), 0, 0}),
              oracle->CountMatches({oracle_id(s), 0, 0}));
    EXPECT_EQ(fx.store->CountMatches({0, live_id(p), 0}),
              oracle->CountMatches({0, oracle_id(p), 0}));
    EXPECT_EQ(fx.store->CountMatches({0, 0, live_id(o)}),
              oracle->CountMatches({0, 0, oracle_id(o)}));
    EXPECT_EQ(fx.store->CountMatches({live_id(s), live_id(p), 0}),
              oracle->CountMatches({oracle_id(s), oracle_id(p), 0}));
  }

  // Merged-range access paths agree with each other: operator[] versus
  // Fetch chunks versus Slice, plus LowerBound consistency.
  {
    rdf::TripleStore::ReadPin pin(*fx.store);
    rdf::IndexRange range = fx.store->PermutationRange(rdf::Perm::kSpo);
    if (fx.store->chain_depth() > 0) {
      EXPECT_TRUE(range.merged());
    }
    rdf::IndexBlockScratch scratch;
    std::vector<rdf::EncodedTriple> fetched;
    for (uint64_t pos = 0; pos < range.size();) {
      auto chunk = range.Fetch(pos, 0, &scratch);
      ASSERT_FALSE(chunk.empty());
      fetched.insert(fetched.end(), chunk.begin(), chunk.end());
      pos += chunk.size();
    }
    ASSERT_EQ(fetched.size(), range.size());
    std::uniform_int_distribution<uint64_t> pick(0, range.size() - 1);
    for (int i = 0; i < 64; ++i) {
      uint64_t pos = pick(rng);
      rdf::EncodedTriple t = range[pos];
      EXPECT_EQ(t, fetched[pos]);
      // LowerBound of an existing element finds its first occurrence.
      uint64_t lb = range.LowerBound(t, &scratch);
      ASSERT_LT(lb, range.size());
      EXPECT_EQ(range[lb], t);
      // Slicing preserves the merged backing and the elements.
      uint64_t hi = std::min(pos + 5, range.size());
      rdf::IndexRange slice = range.Slice(pos, hi);
      ASSERT_EQ(slice.size(), hi - pos);
      for (uint64_t j = 0; j < slice.size(); ++j) {
        EXPECT_EQ(slice[j], fetched[pos + j]);
      }
    }
  }

  // Both executors produce the oracle's answers over the live store.
  const char* kQueries[] = {
      "SELECT ?s ?o WHERE { ?s <http://t/p1> ?o }",
      "SELECT ?s WHERE { ?s <http://t/p1> ?x . ?x <http://t/p2> ?y }",
      "SELECT ?obs WHERE { ?obs a <http://test/Observation> }",
  };
  for (const char* query : kQueries) {
    for (sparql::ExecutorKind kind :
         {sparql::ExecutorKind::kVolcano, sparql::ExecutorKind::kVectorized}) {
      sparql::ExecOptions opts;
      opts.executor = kind;
      auto live = sparql::ExecuteText(*fx.store, query, opts);
      auto expect = sparql::ExecuteText(*oracle, query, opts);
      ASSERT_TRUE(live.ok()) << live.status() << "\nquery: " << query;
      ASSERT_TRUE(expect.ok()) << expect.status();
      EXPECT_EQ(SortedRows(*live), SortedRows(*expect)) << "query: " << query;
    }
  }
}

// ---------------------------------------------------------------------------
// Compaction
// ---------------------------------------------------------------------------

TEST(IngestTest, CompactionFoldsChainPreservingVisibleSet) {
  store::IngestorConfig config;
  config.auto_compact = false;  // deterministic: explicit Compact() only
  LiveFixture fx(config);
  fx.MustIngest(Line(1, 1, 1) + Line(2, 1, 2));
  fx.MustIngest(Line(1, 1, 1), IngestOp::kDelete);
  fx.MustIngest(Line(3, 2, 3));
  const auto before = VisibleTriples(*fx.store);
  const uint64_t epoch_before = fx.store->freeze_epoch();
  ASSERT_EQ(fx.store->chain_depth(), 3u);

  ASSERT_TRUE(fx.ingestor->Compact().ok());
  EXPECT_EQ(fx.store->chain_depth(), 0u);
  EXPECT_EQ(fx.store->freeze_epoch(), epoch_before + 1);
  rdf::TripleStore::LiveInfo info = fx.store->live_info();
  EXPECT_TRUE(info.live);
  EXPECT_TRUE(info.compacted_base);
  EXPECT_EQ(info.delta_adds, 0u);
  EXPECT_EQ(info.delta_dels, 0u);
  EXPECT_EQ(VisibleTriples(*fx.store), before);

  // A compacted store keeps ingesting; stats stay coherent for planning.
  fx.MustIngest(Line(4, 2, 4));
  EXPECT_EQ(fx.store->chain_depth(), 1u);
  rdf::TermId p2 = fx.store->Lookup(rdf::Term::Iri("http://t/p2"));
  EXPECT_EQ(fx.store->CountMatches({0, p2, 0}), 2u);
  EXPECT_EQ(fx.store->predicate_stats(p2).triple_count, 2u);

  // Compacting a depth-0 chain is a published no-op (idempotent).
  ASSERT_TRUE(fx.ingestor->Compact().ok());
  ASSERT_TRUE(fx.ingestor->Compact().ok());
  EXPECT_EQ(fx.store->chain_depth(), 0u);
  EXPECT_EQ(VisibleTriples(*fx.store).count(
                "<http://t/s4> <http://t/p2> <http://t/o4> ."),
            1u);
}

TEST(IngestTest, AutoCompactionTriggersOnDepth) {
  store::IngestorConfig config;
  config.compact_threshold_layers = 2;
  config.compact_threshold_triples = 0;
  LiveFixture fx(config);
  for (int i = 0; i < 6; ++i) fx.MustIngest(Line(i, 0, i));
  // The background fold runs on the pool; wait for it to land.
  for (int spin = 0; spin < 200 && fx.store->chain_depth() >= 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_LT(fx.store->chain_depth(), 2u);
  rdf::TermId p0 = fx.store->Lookup(rdf::Term::Iri("http://t/p0"));
  EXPECT_EQ(fx.store->CountMatches({0, p0, 0}), 6u);
}

TEST(IngestTest, FailpointsGateIngestAndCompact) {
  util::FailpointRegistry::Global().DisarmAll();
  store::IngestorConfig config;
  config.auto_compact = false;
  LiveFixture fx(config);
  fx.MustIngest(Line(1, 1, 1));
  const uint64_t epoch = fx.store->freeze_epoch();

  ASSERT_TRUE(util::FailpointRegistry::Global()
                  .Configure("store.ingest=error*1")
                  .ok());
  auto rejected = fx.ingestor->IngestText(Line(2, 1, 1), IngestOp::kInsert,
                                          nullptr);
  EXPECT_FALSE(rejected.ok());
  // The rejected batch published nothing: all-or-nothing.
  EXPECT_EQ(fx.store->freeze_epoch(), epoch);
  EXPECT_EQ(fx.store->chain_depth(), 1u);

  ASSERT_TRUE(util::FailpointRegistry::Global()
                  .Configure("store.compact=error*1")
                  .ok());
  EXPECT_FALSE(fx.ingestor->Compact().ok());
  EXPECT_EQ(fx.store->chain_depth(), 1u);
  util::FailpointRegistry::Global().DisarmAll();

  // Budgets spent: both paths recover.
  EXPECT_TRUE(fx.ingestor->IngestText(Line(2, 1, 1), IngestOp::kInsert,
                                      nullptr)
                  .ok());
  EXPECT_TRUE(fx.ingestor->Compact().ok());
  EXPECT_EQ(fx.store->chain_depth(), 0u);
}

// ---------------------------------------------------------------------------
// Engine integration: epoch movement invalidates cached results
// ---------------------------------------------------------------------------

TEST(IngestTest, EngineCacheFollowsEpochBumps) {
  LiveFixture fx;
  engine::QueryEngine engine(*fx.store);
  const char* query = "SELECT ?s WHERE { ?s <http://t/p1> ?o }";
  sparql::ExecOptions opts;
  auto before = engine.ExecuteText(query, opts, nullptr);
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_EQ((*before)->row_count(), 0u);

  fx.MustIngest(Line(1, 1, 1) + Line(2, 1, 2));
  auto after = engine.ExecuteText(query, opts, nullptr);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ((*after)->row_count(), 2u);

  fx.MustIngest(Line(1, 1, 1), IngestOp::kDelete);
  auto deleted = engine.ExecuteText(query, opts, nullptr);
  ASSERT_TRUE(deleted.ok()) << deleted.status();
  EXPECT_EQ((*deleted)->row_count(), 1u);
}

// ---------------------------------------------------------------------------
// Version 3 snapshots: base + delta chain
// ---------------------------------------------------------------------------

TEST(SnapshotV3Test, LiveRoundTripIsBitIdentical) {
  const std::string path1 = TempPath("live1.snap");
  const std::string path2 = TempPath("live2.snap");
  LiveFixture fx;
  fx.MustIngest(Line(1, 1, 1) + Line(2, 1, 2));
  fx.MustIngest(Line(1, 1, 1), IngestOp::kDelete);
  fx.MustIngest("<http://t/s3> <http://t/p2> \"ninety\" .\n");
  const auto visible = VisibleTriples(*fx.store);
  const uint64_t epoch = fx.store->freeze_epoch();

  ASSERT_TRUE(
      storage::SaveSnapshot(path1, *fx.store, nullptr, nullptr).ok());
  auto info = storage::InspectSnapshot(path1);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->version, storage::kSnapshotVersionLive);

  auto loaded = storage::LoadSnapshot(path1);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->store->live());
  EXPECT_EQ(loaded->store->freeze_epoch(), epoch);
  EXPECT_EQ(loaded->store->chain_depth(), fx.store->chain_depth());
  EXPECT_EQ(VisibleTriples(*loaded->store), visible);
  rdf::TripleStore::LiveInfo info_a = fx.store->live_info();
  rdf::TripleStore::LiveInfo info_b = loaded->store->live_info();
  EXPECT_EQ(info_a.delta_adds, info_b.delta_adds);
  EXPECT_EQ(info_a.delta_dels, info_b.delta_dels);
  EXPECT_EQ(info_a.visible_triples, info_b.visible_triples);

  // save(load(save(x))) == save(x), byte for byte.
  ASSERT_TRUE(
      storage::SaveSnapshot(path2, *loaded->store, nullptr, nullptr).ok());
  EXPECT_EQ(ReadAll(path1), ReadAll(path2));

  // The reloaded store keeps serving and keeps ingesting.
  util::ThreadPool pool(2);
  Ingestor ingestor(loaded->store.get(), &pool);
  auto r = ingestor.IngestText(Line(7, 7, 7), IngestOp::kInsert, nullptr);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(loaded->store->freeze_epoch(), epoch + 1);
  rdf::TermId p7 = loaded->store->Lookup(rdf::Term::Iri("http://t/p7"));
  EXPECT_EQ(loaded->store->CountMatches({0, p7, 0}), 1u);

  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST(SnapshotV3Test, CompactedLiveStoreWritesClassicImage) {
  const std::string path = TempPath("compacted.snap");
  store::IngestorConfig config;
  config.auto_compact = false;
  LiveFixture fx(config);
  fx.MustIngest(Line(1, 1, 1));
  ASSERT_TRUE(fx.ingestor->Compact().ok());
  ASSERT_EQ(fx.store->chain_depth(), 0u);
  const auto visible = VisibleTriples(*fx.store);

  // A depth-0 chain needs no delta section: the folded base is written
  // as a plain version 1 image (nothing lost but the liveness flag).
  ASSERT_TRUE(storage::SaveSnapshot(path, *fx.store, nullptr, nullptr).ok());
  auto info = storage::InspectSnapshot(path);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->version, storage::kSnapshotVersion);

  auto loaded = storage::LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_FALSE(loaded->store->live());
  EXPECT_EQ(loaded->store->freeze_epoch(), fx.store->freeze_epoch());
  EXPECT_EQ(VisibleTriples(*loaded->store), visible);
  std::remove(path.c_str());
}

TEST(SnapshotV3Test, MmapLoadServesLiveChain) {
  const std::string path = TempPath("live_mmap.snap");
  LiveFixture fx;
  fx.MustIngest(Line(1, 1, 1) + Line(2, 2, 2));
  storage::SnapshotLoadOptions options;
  options.use_mmap = true;
  ASSERT_TRUE(storage::SaveSnapshot(path, *fx.store, nullptr, nullptr).ok());
  auto loaded = storage::LoadSnapshot(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->store->live());
  EXPECT_TRUE(loaded->store->borrows_snapshot());
  EXPECT_EQ(VisibleTriples(*loaded->store), VisibleTriples(*fx.store));
  loaded->store.reset();
  std::remove(path.c_str());
}

TEST(SnapshotV3Test, EmptyChainBaseIsRefused) {
  util::FailpointRegistry::Global().DisarmAll();  // chaos CI env baseline
  const std::string path = TempPath("emptybase.snap");
  auto store = std::make_unique<rdf::TripleStore>();
  store->Freeze();
  store->EnterLive();
  util::ThreadPool pool(2);
  Ingestor ingestor(store.get(), &pool);
  ASSERT_TRUE(
      ingestor.IngestText(Line(1, 1, 1), IngestOp::kInsert, nullptr).ok());
  util::Status st = storage::SaveSnapshot(path, *store, nullptr, nullptr);
  EXPECT_TRUE(st.IsInvalidArgument()) << st;
  // Compacting folds the layer into a real base; saving then works.
  ASSERT_TRUE(ingestor.Compact().ok());
  ASSERT_TRUE(storage::SaveSnapshot(path, *store, nullptr, nullptr).ok());
  auto loaded = storage::LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->store->size(), 1u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// HTTP front door: POST /ingest + per-client fair shedding
// ---------------------------------------------------------------------------

class IngestServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::FailpointRegistry::Global().DisarmAll();
    fx_ = std::make_unique<LiveFixture>();
    engine_ = std::make_unique<engine::QueryEngine>(*fx_->store);
  }
  void TearDown() override {
    util::FailpointRegistry::Global().DisarmAll();
    if (server_) server_->Stop();
  }

  server::HttpClient StartServer(server::ServerConfig config = {},
                                 bool with_ingestor = true) {
    server::Dataset dataset;
    dataset.store = fx_->store.get();
    dataset.engine = engine_.get();
    if (with_ingestor) dataset.ingestor = fx_->ingestor.get();
    server_ = std::make_unique<server::Server>(dataset, config);
    util::Status st = server_->Start();
    EXPECT_TRUE(st.ok()) << st;
    return server::HttpClient("127.0.0.1", server_->port());
  }

  std::unique_ptr<LiveFixture> fx_;
  std::unique_ptr<engine::QueryEngine> engine_;
  std::unique_ptr<server::Server> server_;
};

TEST_F(IngestServerTest, IngestRouteAppliesBatchVisibleToQueries) {
  server::HttpClient client = StartServer();
  auto before = client.Post(
      "/query", "SELECT ?s ?o WHERE { ?s <http://t/p1> ?o }");
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_NE(before->body.find("\"row_count\": 0"), std::string::npos);

  auto ingest = client.Post("/ingest", Line(1, 1, 1) + Line(2, 1, 2));
  ASSERT_TRUE(ingest.ok()) << ingest.status();
  ASSERT_EQ(ingest->status, 200) << ingest->body;
  EXPECT_NE(ingest->body.find("\"added\": 2"), std::string::npos)
      << ingest->body;
  EXPECT_NE(ingest->body.find("\"epoch\": "), std::string::npos);

  // The very next query sees the batch — no restart, no re-freeze.
  auto after = client.Post(
      "/query", "SELECT ?s ?o WHERE { ?s <http://t/p1> ?o }");
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_NE(after->body.find("\"row_count\": 2"), std::string::npos)
      << after->body;

  // op=delete takes one back out.
  auto del = client.Post("/ingest?op=delete", Line(1, 1, 1));
  ASSERT_TRUE(del.ok());
  ASSERT_EQ(del->status, 200) << del->body;
  EXPECT_NE(del->body.find("\"deleted\": 1"), std::string::npos);
  auto final = client.Post(
      "/query", "SELECT ?s ?o WHERE { ?s <http://t/p1> ?o }");
  ASSERT_TRUE(final.ok());
  EXPECT_NE(final->body.find("\"row_count\": 1"), std::string::npos);

  // /healthz reports the chain.
  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health->body.find("\"ingest_route\": true"), std::string::npos);
  EXPECT_NE(health->body.find("\"live\": true"), std::string::npos);
  EXPECT_NE(health->body.find("\"chain_depth\": "), std::string::npos);
}

TEST_F(IngestServerTest, IngestRouteErrorTaxonomy) {
  server::HttpClient client = StartServer();
  // Bad op parameter.
  auto bad_op = client.Post("/ingest?op=upsert", Line(1, 1, 1));
  ASSERT_TRUE(bad_op.ok());
  EXPECT_EQ(bad_op->status, 400);
  // Empty body.
  auto empty = client.Post("/ingest", "");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->status, 400);
  // Malformed N-Triples: rejected, nothing applied.
  auto garbage = client.Post("/ingest", "this is not a triple\n");
  ASSERT_TRUE(garbage.ok());
  EXPECT_EQ(garbage->status, 400) << garbage->body;
  EXPECT_EQ(fx_->store->chain_depth(), 0u);
  // Wrong method.
  auto get = client.Get("/ingest");
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(get->status, 405);
  EXPECT_EQ(get->Header("allow"), "POST");
}

TEST_F(IngestServerTest, IngestRouteWithoutIngestorIsTypedError) {
  server::HttpClient client = StartServer({}, /*with_ingestor=*/false);
  auto resp = client.Post("/ingest", Line(1, 1, 1));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 400);
  EXPECT_NE(resp->body.find("without live ingestion"), std::string::npos)
      << resp->body;
}

TEST_F(IngestServerTest, PerClientQueueCapShedsBeyondFairShare) {
  // One worker pinned in a long parse delay, a per-client cap of 1: the
  // first request executes, the second queues, everything further from
  // the same client (all test clients share 127.0.0.1) is shed with the
  // per-client reason even though the global queue has room.
  server::ServerConfig config;
  config.worker_threads = 1;
  config.queue_capacity = 16;
  config.per_client_queue_cap = 1;
  server::HttpClient client = StartServer(config);
  ASSERT_TRUE(util::FailpointRegistry::Global()
                  .Configure("server.parse=delay:300")
                  .ok());
  std::thread inflight([&] {
    server::HttpClient c("127.0.0.1", server_->port());
    (void)c.Post("/query", "SELECT ?s WHERE { ?s ?p ?o }");
  });
  std::thread queued([&] {
    server::HttpClient c("127.0.0.1", server_->port());
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    (void)c.Post("/query", "SELECT ?s WHERE { ?s ?p ?o }");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(160));
  auto resp = client.Post("/query", "SELECT ?s WHERE { ?s ?p ?o }");
  inflight.join();
  queued.join();
  util::FailpointRegistry::Global().DisarmAll();
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 503) << resp->body;
  EXPECT_EQ(resp->Header("retry-after"), "1");
  EXPECT_NE(resp->body.find("per-client"), std::string::npos) << resp->body;
  const server::ServerStats stats = server_->stats();
  EXPECT_GE(stats.shed_per_client, 1u);
  // Per-client sheds are a subset of total sheds.
  EXPECT_GE(stats.shed, stats.shed_per_client);
}

// ---------------------------------------------------------------------------
// Concurrency stress: readers vs ingest vs compaction (TSan-clean)
// ---------------------------------------------------------------------------

TEST(IngestStressTest, ConcurrentReadIngestCompact) {
  store::IngestorConfig config;
  config.compact_threshold_layers = 3;
  LiveFixture fx(config);
  constexpr int kBatches = 40;
  constexpr int kPerBatch = 8;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> violations{0};

  // Writer: kBatches batches of kPerBatch fresh triples, all on the same
  // predicate — batch atomicity means any reader's count is a multiple
  // of kPerBatch at every instant.
  std::thread writer([&] {
    for (int b = 0; b < kBatches; ++b) {
      std::string text;
      for (int i = 0; i < kPerBatch; ++i) {
        text += Line(b * kPerBatch + i, 99, b);
      }
      auto r = fx.ingestor->IngestText(text, IngestOp::kInsert, nullptr);
      if (!r.ok() || r->added != kPerBatch) ++violations;
      // Pace the batches so readers and the compactor genuinely overlap
      // live publications instead of racing a finished writer.
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    done.store(true, std::memory_order_release);
  });

  // Compactor: folds whatever chain exists, repeatedly, while batches
  // keep publishing underneath.
  std::thread compactor([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (!fx.ingestor->Compact().ok()) ++violations;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Readers: counts are epoch-consistent (multiples of the batch size)
  // and monotone — a published batch never un-publishes, and compaction
  // never changes the visible set.
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      uint64_t last = 0;
      while (!done.load(std::memory_order_acquire)) {
        rdf::TripleStore::ReadPin pin(*fx.store);
        rdf::TermId p99 =
            fx.store->Lookup(rdf::Term::Iri("http://t/p99"));
        uint64_t count =
            p99 == rdf::kInvalidTermId
                ? 0
                : fx.store->CountMatches({0, p99, 0});
        if (count % kPerBatch != 0 || count < last) ++violations;
        last = count;
        // Exercise the full executor path under the same pin.
        sparql::ExecOptions opts;
        opts.executor = sparql::ExecutorKind::kVectorized;
        auto r = sparql::ExecuteText(
            *fx.store, "SELECT ?s WHERE { ?s <http://t/p99> ?o }", opts);
        if (!r.ok() || (*r).row_count() % kPerBatch != 0) ++violations;
      }
    });
  }

  writer.join();
  compactor.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(violations.load(), 0u);
  rdf::TermId p99 = fx.store->Lookup(rdf::Term::Iri("http://t/p99"));
  EXPECT_EQ(fx.store->CountMatches({0, p99, 0}),
            static_cast<uint64_t>(kBatches * kPerBatch));
}

}  // namespace
}  // namespace re2xolap
