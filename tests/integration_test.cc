// End-to-end integration tests over the generated datasets: bootstrap,
// synthesis, execution, and every refinement, checking the paper's formal
// guarantees (Problems 1 and 2a-2c) on real-sized inputs.

#include <gtest/gtest.h>

#include "core/session.h"
#include "core/sparqlbye_baseline.h"
#include "qb/datasets.h"
#include "qb/generator.h"
#include "sparql/executor.h"

namespace re2xolap::core {
namespace {

/// Shared across the suite: generating + bootstrapping once keeps the
/// suite fast.
class EurostatIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto ds = qb::Generate(qb::EurostatSpec(20000));
    ASSERT_TRUE(ds.ok());
    dataset_ = new qb::GeneratedDataset(std::move(ds).value());
    auto vsg = VirtualSchemaGraph::Build(*dataset_->store,
                                         dataset_->spec.observation_class);
    ASSERT_TRUE(vsg.ok());
    vsg_ = new VirtualSchemaGraph(std::move(vsg).value());
    text_ = new rdf::TextIndex(*dataset_->store);
  }
  static void TearDownTestSuite() {
    delete text_;
    delete vsg_;
    delete dataset_;
    text_ = nullptr;
    vsg_ = nullptr;
    dataset_ = nullptr;
  }

  static qb::GeneratedDataset* dataset_;
  static VirtualSchemaGraph* vsg_;
  static rdf::TextIndex* text_;
};

qb::GeneratedDataset* EurostatIntegration::dataset_ = nullptr;
VirtualSchemaGraph* EurostatIntegration::vsg_ = nullptr;
rdf::TextIndex* EurostatIntegration::text_ = nullptr;

TEST_F(EurostatIntegration, GermanyHasTwoInterpretations) {
  Reolap reolap(dataset_->store.get(), vsg_, text_);
  // "Germany" labels both an origin-country and a destination-country
  // member: two interpretations, two queries (paper Section 5 example).
  std::vector<Interpretation> interps = reolap.MatchValue("Germany");
  EXPECT_EQ(interps.size(), 2u);
  auto queries = reolap.Synthesize({"Germany"});
  ASSERT_TRUE(queries.ok());
  EXPECT_EQ(queries->size(), 2u);
}

TEST_F(EurostatIntegration, Germany2014ProducesTwoValidQueries) {
  Reolap reolap(dataset_->store.get(), vsg_, text_);
  auto queries = reolap.Synthesize({"Germany", "2014"});
  ASSERT_TRUE(queries.ok());
  // Origin x Year and Destination x Year.
  EXPECT_EQ(queries->size(), 2u);
  for (const CandidateQuery& q : *queries) {
    auto result = sparql::Execute(*dataset_->store, q.query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result->row_count(), 0u);
    // Problem 1 guarantee: the example is subsumed by the result.
    ExploreState st = InitialState(q);
    EXPECT_FALSE(ExampleRowIndexes(st, *result).empty())
        << "example not in results of: " << q.description;
  }
}

TEST_F(EurostatIntegration, HierarchyLevelExample) {
  Reolap reolap(dataset_->store.get(), vsg_, text_);
  // "Asia" is an origin continent: reached via countryOrigin/inContinent.
  auto queries = reolap.Synthesize({"Asia", "2014"});
  ASSERT_TRUE(queries.ok());
  ASSERT_GE(queries->size(), 1u);
  bool found_continent_year = false;
  for (const CandidateQuery& q : *queries) {
    if (q.interpretations[0].path->predicates.size() == 2 &&
        q.interpretations[1].path->predicates.size() == 2) {
      found_continent_year = true;
      auto result = sparql::Execute(*dataset_->store, q.query);
      ASSERT_TRUE(result.ok());
      // 7 continents x 10 years upper bound.
      EXPECT_LE(result->row_count(), 70u);
      EXPECT_GT(result->row_count(), 0u);
    }
  }
  EXPECT_TRUE(found_continent_year);
}

TEST_F(EurostatIntegration, RefinementChainPreservesSubsumption) {
  // Problem 2 invariant along a whole chain: example tuples remain
  // subsumed after Disaggregate -> TopK.
  Session session(dataset_->store.get(), vsg_, text_);
  ASSERT_TRUE(session.Start({"Germany", "2014"}).ok());
  ASSERT_TRUE(session.PickCandidate(0).ok());
  ASSERT_TRUE(session.Execute().ok());

  auto dis = session.Refine(RefinementKind::kDisaggregate);
  ASSERT_TRUE(dis.ok());
  ASSERT_FALSE(dis->empty());
  ASSERT_TRUE(session.PickRefinement(0).ok());
  auto t = session.Execute();
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(ExampleRowIndexes(session.current(), **t).empty());

  auto topk = session.Refine(RefinementKind::kTopK);
  ASSERT_TRUE(topk.ok());
  if (!topk->empty()) {
    ASSERT_TRUE(session.PickRefinement(0).ok());
    auto t2 = session.Execute();
    ASSERT_TRUE(t2.ok());
    EXPECT_FALSE(ExampleRowIndexes(session.current(), **t2).empty());
  }
}

TEST_F(EurostatIntegration, DisaggregateMatchesProblem2aCardinality) {
  Reolap reolap(dataset_->store.get(), vsg_, text_);
  auto queries = reolap.Synthesize({"Germany"});
  ASSERT_TRUE(queries.ok());
  ASSERT_FALSE(queries->empty());
  ExploreState st = InitialState((*queries)[0]);
  auto refs = Disaggregate(*vsg_, *dataset_->store, st);
  // |D(T_r)| = |D(T)| + 1 for every refinement.
  for (const ExploreState& r : refs) {
    EXPECT_EQ(r.query.group_by.size(), st.query.group_by.size() + 1);
  }
  // Excluded: the used base path plus every path extending it upward
  // (both country levels have two hierarchy branches): 10 - 3 = 7.
  EXPECT_EQ(refs.size(), vsg_->level_paths().size() - 3);
}

TEST_F(EurostatIntegration, SubsetRefinementsAreStrictSubsets) {
  Reolap reolap(dataset_->store.get(), vsg_, text_);
  auto queries = reolap.Synthesize({"Syria"});
  ASSERT_TRUE(queries.ok());
  ASSERT_FALSE(queries->empty());
  ExploreState st = InitialState((*queries)[0]);
  auto table = sparql::Execute(*dataset_->store, st.query);
  ASSERT_TRUE(table.ok());
  const size_t full = table->row_count();

  auto topk = SubsetTopK(*dataset_->store, st, *table);
  ASSERT_TRUE(topk.ok());
  for (const ExploreState& r : *topk) {
    auto rt = sparql::Execute(*dataset_->store, r.query);
    ASSERT_TRUE(rt.ok());
    EXPECT_LT(rt->row_count(), full);               // |T_r| < |T|
    EXPECT_EQ(rt->column_count(), table->column_count());  // D(T_r)=D(T)
    EXPECT_FALSE(ExampleRowIndexes(r, *rt).empty());       // T_E ⊑ T_r
  }
  auto perc = SubsetPercentile(*dataset_->store, st, *table);
  ASSERT_TRUE(perc.ok());
  for (const ExploreState& r : *perc) {
    auto rt = sparql::Execute(*dataset_->store, r.query);
    ASSERT_TRUE(rt.ok());
    EXPECT_LT(rt->row_count(), full);
    EXPECT_FALSE(ExampleRowIndexes(r, *rt).empty());
  }
}

TEST_F(EurostatIntegration, SimilarityKeepsKPlusExample) {
  Session session(dataset_->store.get(), vsg_, text_);
  ASSERT_TRUE(session.Start({"Germany"}).ok());
  ASSERT_TRUE(session.PickCandidate(0).ok());
  // Disaggregate by year so similarity has a feature dimension.
  auto dis = session.Refine(RefinementKind::kDisaggregate);
  ASSERT_TRUE(dis.ok());
  size_t year_idx = 0;
  for (size_t i = 0; i < dis->size(); ++i) {
    if ((*dis)[i].description.find("/ Year") != std::string::npos) {
      year_idx = i;
    }
  }
  ASSERT_TRUE(session.PickRefinement(year_idx).ok());
  SimilarityOptions opts;
  opts.k = 3;
  auto sim = session.Refine(RefinementKind::kSimilarity, opts);
  ASSERT_TRUE(sim.ok());
  ASSERT_FALSE(sim->empty());
  ASSERT_TRUE(session.PickRefinement(0).ok());
  auto t = session.Execute();
  ASSERT_TRUE(t.ok());
  // k + 1 countries, each with <= 10 years.
  EXPECT_LE((*t)->row_count(), (opts.k + 1) * 10);
  EXPECT_FALSE(ExampleRowIndexes(session.current(), **t).empty());
}

TEST_F(EurostatIntegration, BaselineCannotProduceAnalytics) {
  SparqlByEBaseline baseline(dataset_->store.get(), text_);
  auto q = baseline.Synthesize({"Asia", "2011"});
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->has_aggregates());
  for (const auto& p : q->patterns) {
    if (!sparql::IsVar(p.p)) {
      EXPECT_EQ(sparql::AsTerm(p.p).value.find("numApplicants"),
                std::string::npos);
    }
  }
}

TEST_F(EurostatIntegration, SynthesisIsDeterministic) {
  Reolap reolap(dataset_->store.get(), vsg_, text_);
  auto a = reolap.Synthesize({"Germany", "2014"});
  auto b = reolap.Synthesize({"Germany", "2014"});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(sparql::ToSparql((*a)[i].query), sparql::ToSparql((*b)[i].query));
  }
}

TEST_F(EurostatIntegration, SynthesizedSparqlTextRoundTrips) {
  // The emitted SPARQL text must be parseable by our own parser and give
  // identical results — guaranteeing the system works over a standard
  // SPARQL interface (paper: "operates on standard SPARQL interfaces").
  Reolap reolap(dataset_->store.get(), vsg_, text_);
  auto queries = reolap.Synthesize({"Asia", "2014"});
  ASSERT_TRUE(queries.ok());
  for (const CandidateQuery& q : *queries) {
    std::string text_q = sparql::ToSparql(q.query);
    auto direct = sparql::Execute(*dataset_->store, q.query);
    auto reparsed = sparql::ExecuteText(*dataset_->store, text_q);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                               << text_q;
    EXPECT_EQ(direct->row_count(), reparsed->row_count());
  }
}

}  // namespace
}  // namespace re2xolap::core
