#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "core/reolap.h"
#include "obs/metrics.h"
#include "sparql/executor.h"
#include "tests/test_data.h"
#include "util/exec_guard.h"

namespace re2xolap::core {
namespace {

using re2xolap::testing::BuildFigure1Store;
using re2xolap::testing::kObsClass;

class ReolapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store = BuildFigure1Store();
    auto r = VirtualSchemaGraph::Build(*store, kObsClass);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    vsg = std::make_unique<VirtualSchemaGraph>(std::move(r).value());
    text = std::make_unique<rdf::TextIndex>(*store);
    reolap = std::make_unique<Reolap>(store.get(), vsg.get(), text.get());
  }

  std::vector<CandidateQuery> Synthesize(std::vector<std::string> values) {
    auto r = reolap->Synthesize(values);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : std::vector<CandidateQuery>{};
  }

  std::unique_ptr<rdf::TripleStore> store;
  std::unique_ptr<VirtualSchemaGraph> vsg;
  std::unique_ptr<rdf::TextIndex> text;
  std::unique_ptr<Reolap> reolap;
};

TEST_F(ReolapTest, MatchValueFindsInterpretations) {
  // "Germany" is only a destination country here: one interpretation.
  std::vector<Interpretation> germany = reolap->MatchValue("Germany");
  ASSERT_EQ(germany.size(), 1u);
  EXPECT_EQ(store->term(germany[0].member).value, "http://test/dest/germany");
  EXPECT_EQ(germany[0].path->predicates.size(), 1u);

  // "2014" is a year: reached via refPeriod/inYear.
  std::vector<Interpretation> y2014 = reolap->MatchValue("2014");
  ASSERT_EQ(y2014.size(), 1u);
  EXPECT_EQ(y2014[0].path->predicates.size(), 2u);
}

TEST_F(ReolapTest, MatchValueUnknownIsEmpty) {
  EXPECT_TRUE(reolap->MatchValue("Atlantis").empty());
}

TEST_F(ReolapTest, PaperExampleGermanny2014) {
  // Paper Section 5: input <"Germany","2014"> produces queries grouping by
  // destination country and year.
  std::vector<CandidateQuery> queries = Synthesize({"Germany", "2014"});
  ASSERT_EQ(queries.size(), 1u);
  const CandidateQuery& q = queries[0];
  EXPECT_EQ(q.query.group_by.size(), 2u);
  EXPECT_TRUE(q.query.has_aggregates());
  // 1 measure x 4 aggregation functions.
  EXPECT_EQ(q.measure_columns.size(), 4u);
  EXPECT_FALSE(q.description.empty());
}

TEST_F(ReolapTest, SynthesizedQueryExecutesAndSubsumesExample) {
  std::vector<CandidateQuery> queries = Synthesize({"Germany", "2014"});
  ASSERT_EQ(queries.size(), 1u);
  auto result = sparql::Execute(*store, queries[0].query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Groups: (DE,2014) (FR,2014) (DE,2015) = 3.
  EXPECT_EQ(result->row_count(), 3u);
  // The example tuple must appear: Germany x 2014 with SUM 403+500+80 = 983.
  int dcol = result->ColumnIndex(queries[0].group_columns[0]);
  int ycol = result->ColumnIndex(queries[0].group_columns[1]);
  int sum = result->ColumnIndex(queries[0].measure_columns[0]);
  ASSERT_GE(dcol, 0);
  ASSERT_GE(ycol, 0);
  ASSERT_GE(sum, 0);
  bool found = false;
  for (size_t r = 0; r < result->row_count(); ++r) {
    if (result->at(r, dcol).term == queries[0].interpretations[0].member &&
        result->at(r, ycol).term == queries[0].interpretations[1].member) {
      EXPECT_DOUBLE_EQ(result->NumericValue(result->at(r, sum)), 983);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ReolapTest, AmbiguousValueYieldsMultipleQueries) {
  // "Asia" matches the origin continent (single interpretation), but "2014"
  // is fixed, so: 1 query. Now use "Syria" which is only an origin.
  // For multiplicity use a value appearing at two levels: none here, so
  // check combination counting instead with two independently matched
  // values.
  std::vector<CandidateQuery> queries = Synthesize({"Asia", "Germany"});
  ASSERT_EQ(queries.size(), 1u);
  EXPECT_EQ(queries[0].query.group_by.size(), 2u);
  auto result = sparql::Execute(*store, queries[0].query);
  ASSERT_TRUE(result.ok());
  // Groups: (Asia,DE) (Asia,FR) (Africa,DE).
  EXPECT_EQ(result->row_count(), 3u);
}

TEST_F(ReolapTest, SameDimensionValuesProduceNoQuery) {
  // Two destination countries cannot be combined in a single tuple.
  std::vector<CandidateQuery> queries = Synthesize({"Germany", "France"});
  EXPECT_TRUE(queries.empty());
}

TEST_F(ReolapTest, ValidationPrunesDisconnectedCombos) {
  // "France" (dest) has observations only from Syria (Asia): combining
  // France with Africa must be pruned by validation.
  std::vector<CandidateQuery> queries = Synthesize({"France", "Africa"});
  EXPECT_TRUE(queries.empty());
  // Sanity: validation can be turned off.
  ReolapOptions no_validate;
  no_validate.validate = false;
  auto r = reolap->Synthesize({"France", "Africa"}, no_validate);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
}

TEST_F(ReolapTest, UnknownValueShortCircuits) {
  std::vector<CandidateQuery> queries = Synthesize({"Germany", "Narnia"});
  EXPECT_TRUE(queries.empty());
}

TEST_F(ReolapTest, EmptyTupleIsError) {
  EXPECT_FALSE(reolap->Synthesize({}).ok());
}

TEST_F(ReolapTest, SingleValueQuery) {
  std::vector<CandidateQuery> queries = Synthesize({"18-34"});
  ASSERT_EQ(queries.size(), 1u);
  auto result = sparql::Execute(*store, queries[0].query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->row_count(), 2u);  // two age groups
}

TEST_F(ReolapTest, StatsReported) {
  ReolapStats stats;
  auto r = reolap->Synthesize({"Germany", "2014"}, {}, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(stats.interpretations_considered, 1u);
  EXPECT_EQ(stats.combinations_checked, 1u);
  EXPECT_EQ(stats.validated_ok, 1u);
  EXPECT_GE(stats.match_millis, 0.0);
}

TEST_F(ReolapTest, ValidateComboDirectly) {
  std::vector<Interpretation> germany = reolap->MatchValue("Germany");
  std::vector<Interpretation> africa = reolap->MatchValue("Africa");
  ASSERT_EQ(germany.size(), 1u);
  ASSERT_EQ(africa.size(), 1u);
  EXPECT_TRUE(reolap->ValidateCombo({germany[0], africa[0]}, 1000));
  std::vector<Interpretation> france = reolap->MatchValue("France");
  EXPECT_FALSE(reolap->ValidateCombo({france[0], africa[0]}, 1000));
}

TEST_F(ReolapTest, QueryRendersAsSparqlText) {
  std::vector<CandidateQuery> queries = Synthesize({"Germany", "2014"});
  ASSERT_EQ(queries.size(), 1u);
  std::string text = sparql::ToSparql(queries[0].query);
  EXPECT_NE(text.find("GROUP BY"), std::string::npos);
  EXPECT_NE(text.find("SUM"), std::string::npos);
  EXPECT_NE(text.find("refPeriod"), std::string::npos);
}

TEST_F(ReolapTest, AllAggregatesOffProducesSumOnly) {
  ReolapOptions opts;
  opts.all_aggregates = false;
  auto r = reolap->Synthesize({"Germany"}, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].measure_columns.size(), 1u);
}

// --- graceful degradation under deadlines ------------------------------------------

/// Returns an ExecGuard whose deadline has already passed.
util::ExecGuard ExpiredGuard() {
  util::ExecGuard guard = util::ExecGuard::WithDeadline(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  return guard;
}

TEST_F(ReolapTest, TinyDeadlineStillProducesTheFirstBlock) {
  // Min-progress guarantee: even a 1 ms overall budget yields the
  // validated candidates of the first block instead of erroring.
  ReolapOptions opts;
  opts.overall_deadline_millis = 1;
  opts.num_threads = 1;
  ReolapStats stats;
  auto r = reolap->Synthesize({"Germany", "2014"}, opts, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 1u);
}

TEST_F(ReolapTest, ExpiredGuardTruncatesCombinationEnumeration) {
  // A second interpretation of "Germany" (also an origin country below)
  // creates a two-combination space. Under an already-expired guard,
  // serial synthesis still processes the first one-combination block
  // (min-progress) and then degrades: partial candidates come back with
  // the truncated flag and a reason instead of an error.
  using rdf::Term;
  const Term origin_de = Term::Iri("http://test/origin/germany");
  store->Add(origin_de, Term::Iri(re2xolap::testing::kLabelIri),
             Term::StringLiteral("Germany"));
  store->Add(Term::Iri("http://test/obs/0"),
             Term::Iri("http://test/countryOrigin"), origin_de);
  store->Freeze();
  auto rebuilt = VirtualSchemaGraph::Build(*store, kObsClass);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  vsg = std::make_unique<VirtualSchemaGraph>(std::move(rebuilt).value());
  text = std::make_unique<rdf::TextIndex>(*store);
  reolap = std::make_unique<Reolap>(store.get(), vsg.get(), text.get());
  ASSERT_EQ(reolap->MatchValue("Germany").size(), 2u);

  obs::Counter& timeouts =
      obs::MetricsRegistry::Global().GetCounter("guard.timeouts");
  const uint64_t timeouts_before = timeouts.value();

  util::ExecGuard guard = ExpiredGuard();
  ReolapOptions opts;
  opts.guard = &guard;
  opts.num_threads = 1;  // serial: one combination per validation block
  ReolapStats stats;
  auto r = reolap->Synthesize({"Germany", "2014"}, opts, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 1u);
  EXPECT_EQ(stats.combinations_checked, 1u);
  EXPECT_TRUE(stats.truncated);
  EXPECT_NE(stats.degraded_reason.find("remaining combinations skipped"),
            std::string::npos)
      << stats.degraded_reason;
  // The guard's timeout is reported to metrics exactly once per guard no
  // matter how many phases observed it.
  EXPECT_EQ(timeouts.value(), timeouts_before + 1);
}

TEST_F(ReolapTest, SynthesizeMultiSkipsFilteringUnderExpiredDeadline) {
  util::ExecGuard guard = ExpiredGuard();
  ReolapOptions opts;
  opts.guard = &guard;
  opts.num_threads = 1;
  ReolapStats stats;
  auto r = reolap->SynthesizeMulti({{"Germany"}, {"France"}}, opts, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The first tuple's candidates survive unfiltered, explicitly flagged.
  EXPECT_EQ(r->size(), 1u);
  EXPECT_TRUE(stats.truncated);
  EXPECT_NE(stats.degraded_reason.find("multi-tuple filtering"),
            std::string::npos)
      << stats.degraded_reason;
}

}  // namespace
}  // namespace re2xolap::core
