// Tests for the extensions beyond the paper's core algorithms: multi-tuple
// synthesis, mixed (IRI) inputs, candidate ranking, negative examples,
// clustering-based subsets, and the dataset profiler.

#include <sstream>

#include <gtest/gtest.h>

#include "core/profile.h"
#include "core/session.h"
#include "sparql/executor.h"
#include "tests/test_data.h"

namespace re2xolap::core {
namespace {

using re2xolap::testing::BuildFigure1Store;
using re2xolap::testing::kObsClass;

class ExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store = BuildFigure1Store();
    auto r = VirtualSchemaGraph::Build(*store, kObsClass);
    ASSERT_TRUE(r.ok());
    vsg = std::make_unique<VirtualSchemaGraph>(std::move(r).value());
    text = std::make_unique<rdf::TextIndex>(*store);
    reolap = std::make_unique<Reolap>(store.get(), vsg.get(), text.get());
  }
  std::unique_ptr<rdf::TripleStore> store;
  std::unique_ptr<VirtualSchemaGraph> vsg;
  std::unique_ptr<rdf::TextIndex> text;
  std::unique_ptr<Reolap> reolap;
};

// --- Mixed (IRI) inputs -------------------------------------------------------

TEST_F(ExtensionsTest, IriInputResolvesDirectly) {
  for (const std::string& value :
       {std::string("<http://test/dest/germany>"),
        std::string("http://test/dest/germany")}) {
    std::vector<Interpretation> interps = reolap->MatchValue(value);
    ASSERT_EQ(interps.size(), 1u) << value;
    EXPECT_EQ(store->term(interps[0].member).value,
              "http://test/dest/germany");
  }
}

TEST_F(ExtensionsTest, IriInputMixesWithLabels) {
  auto queries =
      reolap->Synthesize({"<http://test/dest/germany>", "2014"});
  ASSERT_TRUE(queries.ok());
  ASSERT_EQ(queries->size(), 1u);
  auto table = sparql::Execute(*store, (*queries)[0].query);
  ASSERT_TRUE(table.ok());
  EXPECT_GT(table->row_count(), 0u);
}

TEST_F(ExtensionsTest, UnknownIriMatchesNothing) {
  EXPECT_TRUE(reolap->MatchValue("<http://test/dest/narnia>").empty());
  EXPECT_TRUE(reolap->MatchValue("http://nowhere/x").empty());
}

// --- Multi-tuple synthesis ------------------------------------------------------

TEST_F(ExtensionsTest, MultiTupleKeepsCommonInterpretations) {
  // Rows <Germany> and <France>: both destination countries -> the
  // destination query survives; no other dimension covers both.
  auto queries = reolap->SynthesizeMulti({{"Germany"}, {"France"}});
  ASSERT_TRUE(queries.ok());
  ASSERT_EQ(queries->size(), 1u);
  const CandidateQuery& q = (*queries)[0];
  ASSERT_EQ(q.extra_rows.size(), 1u);
  EXPECT_EQ(store->term(q.extra_rows[0][0].member).value,
            "http://test/dest/france");
}

TEST_F(ExtensionsTest, MultiTupleRejectsUncoveredRows) {
  // "18-34" is an age; the destination interpretation of "Germany" cannot
  // cover it -> no common query.
  auto queries = reolap->SynthesizeMulti({{"Germany"}, {"18-34"}});
  ASSERT_TRUE(queries.ok());
  EXPECT_TRUE(queries->empty());
}

TEST_F(ExtensionsTest, MultiTupleValidationPrunesDisconnectedRows) {
  // <France, Africa>: France only receives Asian applicants here, so the
  // second row fails joint validation even though both values map to the
  // right levels (first row <Germany, Asia> is fine).
  auto queries =
      reolap->SynthesizeMulti({{"Germany", "Asia"}, {"France", "Africa"}});
  ASSERT_TRUE(queries.ok());
  EXPECT_TRUE(queries->empty());
  // Sanity: a connected second row passes.
  auto ok = reolap->SynthesizeMulti({{"Germany", "Asia"}, {"France", "Asia"}});
  ASSERT_TRUE(ok.ok());
  ASSERT_EQ(ok->size(), 1u);
}

TEST_F(ExtensionsTest, MultiTupleArityMismatchIsError) {
  EXPECT_FALSE(reolap->SynthesizeMulti({{"Germany"}, {"France", "2014"}}).ok());
  EXPECT_FALSE(reolap->SynthesizeMulti({}).ok());
}

TEST_F(ExtensionsTest, MultiTupleExampleRowsAnchorRefinements) {
  auto queries = reolap->SynthesizeMulti({{"Germany"}, {"France"}});
  ASSERT_TRUE(queries.ok());
  ASSERT_FALSE(queries->empty());
  ExploreState st = InitialState((*queries)[0]);
  auto table = sparql::Execute(*store, st.query);
  ASSERT_TRUE(table.ok());
  // Both rows (Germany and France) anchor the example set.
  EXPECT_EQ(ExampleRowIndexes(st, *table).size(), 2u);
}

// --- Ranking ----------------------------------------------------------------------

TEST_F(ExtensionsTest, RankingPrefersShallowerAndSmallerLevels) {
  // "2014" at year level (depth 2, 2 members) vs "Germany" at destination
  // base (depth 1): build synthetic candidates and rank.
  auto q_deep = reolap->Synthesize({"2014"});
  auto q_flat = reolap->Synthesize({"Germany"});
  ASSERT_TRUE(q_deep.ok());
  ASSERT_TRUE(q_flat.ok());
  std::vector<CandidateQuery> all;
  all.push_back((*q_deep)[0]);   // depth 2
  all.push_back((*q_flat)[0]);   // depth 1
  RankCandidates(*vsg, &all);
  EXPECT_EQ(all[0].interpretations[0].path->predicates.size(), 1u);
  EXPECT_EQ(all[1].interpretations[0].path->predicates.size(), 2u);
}

TEST_F(ExtensionsTest, RankingViaOptionsIsStableAndComplete) {
  ReolapOptions opts;
  opts.rank_candidates = true;
  auto ranked = reolap->Synthesize({"Asia", "Germany"}, opts);
  auto plain = reolap->Synthesize({"Asia", "Germany"});
  ASSERT_TRUE(ranked.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(ranked->size(), plain->size());
}

// --- Negative examples --------------------------------------------------------------

TEST_F(ExtensionsTest, NegativeExampleExcludesMember) {
  auto queries = reolap->Synthesize({"Asia"});
  ASSERT_TRUE(queries.ok());
  ASSERT_FALSE(queries->empty());
  ExploreState st = InitialState((*queries)[0]);
  auto before = sparql::Execute(*store, st.query);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->row_count(), 2u);  // Asia, Africa

  auto neg = ExcludeNegativeExamples(*reolap, st, {"Africa"});
  ASSERT_TRUE(neg.ok()) << neg.status().ToString();
  EXPECT_TRUE(neg->unmatched_values.empty());
  auto after = sparql::Execute(*store, neg->state.query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->row_count(), 1u);
  // The example itself survives.
  EXPECT_FALSE(ExampleRowIndexes(neg->state, *after).empty());
}

TEST_F(ExtensionsTest, NegativeExampleUnmatchedReported) {
  auto queries = reolap->Synthesize({"Asia"});
  ASSERT_TRUE(queries.ok());
  ExploreState st = InitialState((*queries)[0]);
  // "18-34" exists but is not on a level present in this query.
  auto neg = ExcludeNegativeExamples(*reolap, st, {"Africa", "18-34"});
  ASSERT_TRUE(neg.ok());
  ASSERT_EQ(neg->unmatched_values.size(), 1u);
  EXPECT_EQ(neg->unmatched_values[0], "18-34");
  // All values unmatched -> error.
  EXPECT_FALSE(ExcludeNegativeExamples(*reolap, st, {"18-34"}).ok());
  EXPECT_FALSE(ExcludeNegativeExamples(*reolap, st, {}).ok());
}

TEST_F(ExtensionsTest, NegativeExamplesViaSession) {
  Session session(store.get(), vsg.get(), text.get());
  ASSERT_TRUE(session.Start({"Asia"}).ok());
  ASSERT_TRUE(session.PickCandidate(0).ok());
  auto unmatched = session.ExcludeNegative({"Africa"});
  ASSERT_TRUE(unmatched.ok());
  auto table = session.Execute();
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->row_count(), 1u);
  session.Back();  // exclusion is undoable
  auto table2 = session.Execute();
  ASSERT_TRUE(table2.ok());
  EXPECT_EQ((*table2)->row_count(), 2u);
}

// --- Clustering-based subsets ---------------------------------------------------------

TEST_F(ExtensionsTest, ClusterRefinementKeepsExampleCluster) {
  // Origin-country query: Syria=1023, China=80, Nigeria=60. With k=2 the
  // example (China) clusters with Nigeria.
  auto queries = reolap->Synthesize({"China"});
  ASSERT_TRUE(queries.ok());
  ASSERT_FALSE(queries->empty());
  ExploreState st = InitialState((*queries)[0]);
  auto table = sparql::Execute(*store, st.query);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->row_count(), 3u);

  ClusterOptions opts;
  opts.k = 2;
  auto refs = SubsetCluster(*store, st, *table, opts);
  ASSERT_TRUE(refs.ok());
  ASSERT_FALSE(refs->empty());
  for (const ExploreState& r : *refs) {
    auto rt = sparql::Execute(*store, r.query);
    ASSERT_TRUE(rt.ok());
    EXPECT_LT(rt->row_count(), table->row_count());
    EXPECT_FALSE(ExampleRowIndexes(r, *rt).empty());
  }
  // The sum-measure refinement keeps exactly {China, Nigeria}.
  auto rt0 = sparql::Execute(*store, (*refs)[0].query);
  ASSERT_TRUE(rt0.ok());
  EXPECT_EQ(rt0->row_count(), 2u);
}

TEST_F(ExtensionsTest, ClusterRefinementEmptyWhenTooFewRows) {
  auto queries = reolap->Synthesize({"Germany"});
  ASSERT_TRUE(queries.ok());
  ExploreState st = InitialState((*queries)[0]);
  auto table = sparql::Execute(*store, st.query);  // 2 rows
  ASSERT_TRUE(table.ok());
  ClusterOptions opts;
  opts.k = 3;
  auto refs = SubsetCluster(*store, st, *table, opts);
  ASSERT_TRUE(refs.ok());
  EXPECT_TRUE(refs->empty());
}

TEST_F(ExtensionsTest, ClusterViaSession) {
  Session session(store.get(), vsg.get(), text.get());
  ASSERT_TRUE(session.Start({"China"}).ok());
  ASSERT_TRUE(session.PickCandidate(0).ok());
  ClusterOptions copts;
  copts.k = 2;
  auto refs = session.Refine(RefinementKind::kCluster, {}, {}, copts);
  ASSERT_TRUE(refs.ok());
  EXPECT_FALSE(refs->empty());
  EXPECT_STREQ(RefinementKindName(RefinementKind::kCluster), "Cluster");
}

// --- Profiler ---------------------------------------------------------------------------

TEST_F(ExtensionsTest, ProfileReportsStructureAndStats) {
  auto profile = ProfileDataset(*store, *vsg);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_EQ(profile->observation_count, 5u);
  EXPECT_EQ(profile->triple_count, store->size());
  EXPECT_EQ(profile->total_members, 14u);
  EXPECT_EQ(profile->dimensions.size(), 4u);
  ASSERT_EQ(profile->measures.size(), 1u);
  const MeasureProfile& m = profile->measures[0];
  EXPECT_EQ(m.count, 5u);
  EXPECT_DOUBLE_EQ(m.min, 60);
  EXPECT_DOUBLE_EQ(m.max, 500);
  EXPECT_DOUBLE_EQ(m.sum, 1163);

  std::ostringstream os;
  profile->Print(os);
  EXPECT_NE(os.str().find("dimensions (4)"), std::string::npos);
  EXPECT_NE(os.str().find("Num Applicants"), std::string::npos);
}

TEST_F(ExtensionsTest, ProfileSamplesMemberLabels) {
  auto profile = ProfileDataset(*store, *vsg);
  ASSERT_TRUE(profile.ok());
  bool found_germany = false;
  for (const DimensionProfile& d : profile->dimensions) {
    for (const LevelProfile& l : d.levels) {
      EXPECT_GT(l.member_count, 0u);
      EXPECT_FALSE(l.sample_labels.empty());
      for (const std::string& s : l.sample_labels) {
        if (s == "Germany") found_germany = true;
      }
    }
  }
  EXPECT_TRUE(found_germany);
}

}  // namespace
}  // namespace re2xolap::core

namespace re2xolap::core {
namespace {

class ContrastTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store = re2xolap::testing::BuildFigure1Store();
    auto r = VirtualSchemaGraph::Build(*store, re2xolap::testing::kObsClass);
    ASSERT_TRUE(r.ok());
    vsg = std::make_unique<VirtualSchemaGraph>(std::move(r).value());
    text = std::make_unique<rdf::TextIndex>(*store);
    reolap = std::make_unique<Reolap>(store.get(), vsg.get(), text.get());
  }
  std::unique_ptr<rdf::TripleStore> store;
  std::unique_ptr<VirtualSchemaGraph> vsg;
  std::unique_ptr<rdf::TextIndex> text;
  std::unique_ptr<Reolap> reolap;
};

TEST_F(ContrastTest, ComparesTwoExampleSets) {
  auto queries = reolap->Synthesize({"Syria"});
  ASSERT_TRUE(queries.ok());
  ASSERT_FALSE(queries->empty());
  ExploreState st = InitialState((*queries)[0]);
  auto contrasted = ContrastWith(*reolap, st, {"China"});
  ASSERT_TRUE(contrasted.ok()) << contrasted.status().ToString();
  auto table = sparql::Execute(*store, contrasted->query);
  ASSERT_TRUE(table.ok());
  // Only the two origin countries remain.
  EXPECT_EQ(table->row_count(), 2u);
  ContrastReport report = BuildContrastReport(*contrasted, *table);
  ASSERT_EQ(report.measure_columns.size(), 4u);
  ASSERT_EQ(report.others.size(), 1u);
  // Syria: 403+500+120 = 1023; China: 80 (sum measure is column 0).
  EXPECT_DOUBLE_EQ(report.primary[0], 1023);
  EXPECT_DOUBLE_EQ(report.others[0][0], 80);
}

TEST_F(ContrastTest, ContrastSurvivesDisaggregation) {
  auto queries = reolap->Synthesize({"Syria"});
  ASSERT_TRUE(queries.ok());
  ExploreState st = InitialState((*queries)[0]);
  auto contrasted = ContrastWith(*reolap, st, {"Nigeria"});
  ASSERT_TRUE(contrasted.ok());
  // Disaggregate by destination: the report now sums over dest rows.
  auto dis = Disaggregate(*vsg, *store, *contrasted);
  const ExploreState* by_dest = nullptr;
  for (const ExploreState& d : dis) {
    if (d.extra_columns[0].find("countryDestination") != std::string::npos) {
      by_dest = &d;
    }
  }
  ASSERT_NE(by_dest, nullptr);
  auto table = sparql::Execute(*store, by_dest->query);
  ASSERT_TRUE(table.ok());
  ContrastReport report = BuildContrastReport(*by_dest, *table);
  EXPECT_DOUBLE_EQ(report.primary[0], 1023);    // Syria across dests
  EXPECT_DOUBLE_EQ(report.others[0][0], 60);    // Nigeria
}

TEST_F(ContrastTest, RejectsBadContrasts) {
  auto queries = reolap->Synthesize({"Syria"});
  ASSERT_TRUE(queries.ok());
  ExploreState st = InitialState((*queries)[0]);
  // Arity mismatch.
  EXPECT_FALSE(ContrastWith(*reolap, st, {"China", "2014"}).ok());
  // Value not at the example's level ("Germany" is a destination).
  EXPECT_FALSE(ContrastWith(*reolap, st, {"Germany"}).ok());
  // Unknown value.
  EXPECT_FALSE(ContrastWith(*reolap, st, {"Narnia"}).ok());
}

}  // namespace
}  // namespace re2xolap::core
