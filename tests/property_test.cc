// Property-based (parameterized) tests: invariants that must hold for
// randomly generated stores, queries, and exploration states across seeds.

#include <algorithm>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "core/exref.h"
#include "core/reolap.h"
#include "qb/datasets.h"
#include "qb/generator.h"
#include "rdf/ntriples.h"
#include "rdf/text_index.h"
#include "sparql/executor.h"
#include "util/rng.h"
#include "util/string_utils.h"

namespace re2xolap {
namespace {

// --- TripleStore: index consistency across all pattern shapes ------------------

class StorePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StorePropertyTest, MatchAgreesWithBruteForce) {
  util::Rng rng(GetParam());
  rdf::TripleStore store;
  // Random small graph: ids from small pools to force duplicates/joins.
  std::vector<rdf::TermId> subjects, predicates, objects;
  for (int i = 0; i < 12; ++i) {
    subjects.push_back(
        store.Intern(rdf::Term::Iri("s" + std::to_string(i))));
  }
  for (int i = 0; i < 5; ++i) {
    predicates.push_back(
        store.Intern(rdf::Term::Iri("p" + std::to_string(i))));
  }
  for (int i = 0; i < 8; ++i) {
    objects.push_back(store.Intern(rdf::Term::Iri("o" + std::to_string(i))));
  }
  std::vector<rdf::EncodedTriple> truth;
  for (int i = 0; i < 200; ++i) {
    rdf::EncodedTriple t{subjects[rng.Uniform(subjects.size())],
                         predicates[rng.Uniform(predicates.size())],
                         objects[rng.Uniform(objects.size())]};
    truth.push_back(t);
    store.AddEncoded(t);
  }
  store.Freeze();
  // Deduplicate ground truth like Freeze does.
  std::sort(truth.begin(), truth.end(),
            [](const rdf::EncodedTriple& a, const rdf::EncodedTriple& b) {
              return std::tie(a.s, a.p, a.o) < std::tie(b.s, b.p, b.o);
            });
  truth.erase(std::unique(truth.begin(), truth.end()), truth.end());

  // Every pattern shape over random constants must agree with a filter
  // over the ground truth.
  for (int probe = 0; probe < 100; ++probe) {
    rdf::TriplePattern q;
    if (rng.Bernoulli(0.5)) q.s = subjects[rng.Uniform(subjects.size())];
    if (rng.Bernoulli(0.5)) q.p = predicates[rng.Uniform(predicates.size())];
    if (rng.Bernoulli(0.5)) q.o = objects[rng.Uniform(objects.size())];
    size_t expected = 0;
    for (const rdf::EncodedTriple& t : truth) {
      if (q.Matches(t)) ++expected;
    }
    auto span = store.Match(q);
    ASSERT_EQ(span.size(), expected)
        << "pattern (" << q.s << "," << q.p << "," << q.o << ")";
    for (const rdf::EncodedTriple& t : span) {
      EXPECT_TRUE(q.Matches(t));
    }
  }
}

TEST_P(StorePropertyTest, PredicateStatsSumToStoreSize) {
  util::Rng rng(GetParam() * 7919);
  rdf::TripleStore store;
  for (int i = 0; i < 150; ++i) {
    store.Add(rdf::Term::Iri("s" + std::to_string(rng.Uniform(20))),
              rdf::Term::Iri("p" + std::to_string(rng.Uniform(6))),
              rdf::Term::Iri("o" + std::to_string(rng.Uniform(15))));
  }
  store.Freeze();
  uint64_t total = 0;
  for (rdf::TermId p : store.AllPredicates()) {
    rdf::PredicateStats st = store.predicate_stats(p);
    total += st.triple_count;
    EXPECT_LE(st.distinct_subjects, st.triple_count);
    EXPECT_LE(st.distinct_objects, st.triple_count);
    EXPECT_GT(st.triple_count, 0u);
  }
  EXPECT_EQ(total, store.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- SPARQL executor: plan invariance and modifier algebra ----------------------

class ExecutorPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    auto ds = qb::Generate(qb::EurostatSpec(600, GetParam()));
    ASSERT_TRUE(ds.ok());
    dataset_ = std::move(ds).value();
  }
  qb::GeneratedDataset dataset_;
};

TEST_P(ExecutorPropertyTest, JoinReorderingDoesNotChangeResults) {
  const std::string queries[] = {
      R"(SELECT ?dest (SUM(?v) AS ?t) WHERE {
           ?o <http://example.org/eurostat/countryDestination> ?dest .
           ?o <http://example.org/eurostat/numApplicants> ?v .
         } GROUP BY ?dest)",
      R"(SELECT ?cont (COUNT(*) AS ?n) WHERE {
           ?c <http://example.org/eurostat/inContinent> ?cont .
           ?o <http://example.org/eurostat/countryOrigin> ?c .
           ?o <http://example.org/eurostat/numApplicants> ?v .
           FILTER (?v > 100)
         } GROUP BY ?cont)",
      R"(SELECT ?y ?q WHERE {
           ?m <http://example.org/eurostat/inYear> ?y .
           ?m <http://example.org/eurostat/inQuarter> ?q .
         } ORDER BY ?y ?q LIMIT 30)",
  };
  for (const std::string& q : queries) {
    sparql::ExecOptions with, without;
    without.plan.use_join_reordering = false;
    auto a = sparql::ExecuteText(*dataset_.store, q, with);
    auto b = sparql::ExecuteText(*dataset_.store, q, without);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->row_count(), b->row_count()) << q;
  }
}

TEST_P(ExecutorPropertyTest, SumDecomposesOverGroups) {
  // SUM over all observations equals the sum of per-group SUMs.
  auto total = sparql::ExecuteText(
      *dataset_.store,
      "SELECT (SUM(?v) AS ?t) WHERE { ?o "
      "<http://example.org/eurostat/numApplicants> ?v }");
  auto grouped = sparql::ExecuteText(
      *dataset_.store,
      "SELECT ?d (SUM(?v) AS ?t) WHERE { ?o "
      "<http://example.org/eurostat/countryDestination> ?d . ?o "
      "<http://example.org/eurostat/numApplicants> ?v } GROUP BY ?d");
  ASSERT_TRUE(total.ok());
  ASSERT_TRUE(grouped.ok());
  double sum_groups = 0;
  int tc = grouped->ColumnIndex("t");
  for (size_t r = 0; r < grouped->row_count(); ++r) {
    sum_groups += grouped->NumericValue(grouped->at(r, tc));
  }
  EXPECT_DOUBLE_EQ(sum_groups,
                   total->NumericValue(total->at(0, total->ColumnIndex("t"))));
}

TEST_P(ExecutorPropertyTest, MinMaxBracketAvg) {
  auto r = sparql::ExecuteText(
      *dataset_.store,
      "SELECT ?d (MIN(?v) AS ?lo) (AVG(?v) AS ?mid) (MAX(?v) AS ?hi) WHERE "
      "{ ?o <http://example.org/eurostat/age> ?d . ?o "
      "<http://example.org/eurostat/numApplicants> ?v } GROUP BY ?d");
  ASSERT_TRUE(r.ok());
  int lo = r->ColumnIndex("lo"), mid = r->ColumnIndex("mid"),
      hi = r->ColumnIndex("hi");
  ASSERT_GT(r->row_count(), 0u);
  for (size_t i = 0; i < r->row_count(); ++i) {
    EXPECT_LE(r->NumericValue(r->at(i, lo)), r->NumericValue(r->at(i, mid)));
    EXPECT_LE(r->NumericValue(r->at(i, mid)), r->NumericValue(r->at(i, hi)));
  }
}

TEST_P(ExecutorPropertyTest, LimitOffsetPartitionsResults) {
  const std::string base =
      "SELECT ?o WHERE { ?o a "
      "<http://purl.org/linked-data/cube#Observation> } ";
  auto all = sparql::ExecuteText(*dataset_.store, base);
  ASSERT_TRUE(all.ok());
  size_t n = all->row_count();
  size_t covered = 0;
  for (size_t off = 0; off < n; off += 97) {
    auto page = sparql::ExecuteText(
        *dataset_.store,
        base + "LIMIT 97 OFFSET " + std::to_string(off));
    ASSERT_TRUE(page.ok());
    covered += page->row_count();
  }
  EXPECT_EQ(covered, n);
}

TEST_P(ExecutorPropertyTest, HavingNeverIncreasesRows) {
  const std::string q =
      "SELECT ?d (SUM(?v) AS ?t) WHERE { ?o "
      "<http://example.org/eurostat/countryOrigin> ?d . ?o "
      "<http://example.org/eurostat/numApplicants> ?v } GROUP BY ?d";
  auto full = sparql::ExecuteText(*dataset_.store, q);
  ASSERT_TRUE(full.ok());
  for (const char* cond : {"HAVING (?t > 1000)", "HAVING (?t <= 1000)"}) {
    auto filtered =
        sparql::ExecuteText(*dataset_.store, q + " " + cond);
    ASSERT_TRUE(filtered.ok());
    EXPECT_LE(filtered->row_count(), full->row_count());
  }
  // The two complementary HAVINGs partition the groups.
  auto gt = sparql::ExecuteText(*dataset_.store, q + " HAVING (?t > 1000)");
  auto le = sparql::ExecuteText(*dataset_.store, q + " HAVING (?t <= 1000)");
  ASSERT_TRUE(gt.ok());
  ASSERT_TRUE(le.ok());
  EXPECT_EQ(gt->row_count() + le->row_count(), full->row_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

// --- ReOLAP + refinements: the paper's formal guarantees across seeds ------------

struct ReolapCase {
  uint64_t seed;
  const char* v0;
  const char* v1;  // nullptr = size-1 input
};

class ReolapPropertyTest : public ::testing::TestWithParam<ReolapCase> {};

TEST_P(ReolapPropertyTest, SynthesisGuarantees) {
  const ReolapCase& c = GetParam();
  auto ds = qb::Generate(qb::EurostatSpec(3000, c.seed));
  ASSERT_TRUE(ds.ok());
  auto vsg = core::VirtualSchemaGraph::Build(*ds->store,
                                             ds->spec.observation_class);
  ASSERT_TRUE(vsg.ok());
  rdf::TextIndex text(*ds->store);
  core::Reolap reolap(ds->store.get(), &*vsg, &text);

  std::vector<std::string> tuple = {c.v0};
  if (c.v1) tuple.push_back(c.v1);
  auto queries = reolap.Synthesize(tuple);
  ASSERT_TRUE(queries.ok());
  for (const core::CandidateQuery& q : *queries) {
    // Minimality: |group columns| == |example| (Problem 1's constraint
    // D(Q(G)) = D(T_E)).
    EXPECT_EQ(q.group_columns.size(), tuple.size());
    // Correctness: non-empty result subsuming the example.
    auto table = sparql::Execute(*ds->store, q.query);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    ASSERT_GT(table->row_count(), 0u) << q.description;
    core::ExploreState st = core::InitialState(q);
    EXPECT_FALSE(core::ExampleRowIndexes(st, *table).empty())
        << q.description;
    // Distinct dimensions within one combination.
    std::set<rdf::TermId> dims;
    for (const core::Interpretation& in : q.interpretations) {
      EXPECT_TRUE(dims.insert(in.path->dimension_predicate()).second);
    }
  }
}

TEST_P(ReolapPropertyTest, RefinementGuarantees) {
  const ReolapCase& c = GetParam();
  auto ds = qb::Generate(qb::EurostatSpec(3000, c.seed));
  ASSERT_TRUE(ds.ok());
  auto vsg = core::VirtualSchemaGraph::Build(*ds->store,
                                             ds->spec.observation_class);
  ASSERT_TRUE(vsg.ok());
  rdf::TextIndex text(*ds->store);
  core::Reolap reolap(ds->store.get(), &*vsg, &text);

  std::vector<std::string> tuple = {c.v0};
  if (c.v1) tuple.push_back(c.v1);
  auto queries = reolap.Synthesize(tuple);
  ASSERT_TRUE(queries.ok());
  if (queries->empty()) GTEST_SKIP() << "no candidate for this tuple";
  core::ExploreState st = core::InitialState((*queries)[0]);
  auto table = sparql::Execute(*ds->store, st.query);
  ASSERT_TRUE(table.ok());

  // Problem 2a: every disaggregation adds exactly one dimension and keeps
  // the example subsumed.
  for (const core::ExploreState& r :
       core::Disaggregate(*vsg, *ds->store, st)) {
    auto rt = sparql::Execute(*ds->store, r.query);
    ASSERT_TRUE(rt.ok());
    EXPECT_EQ(rt->column_count(), table->column_count() + 1);
    EXPECT_FALSE(core::ExampleRowIndexes(r, *rt).empty())
        << r.description;
  }

  // Problem 2b: strict subsets, same dimensions, example kept.
  auto topk = core::SubsetTopK(*ds->store, st, *table);
  ASSERT_TRUE(topk.ok());
  for (const core::ExploreState& r : *topk) {
    auto rt = sparql::Execute(*ds->store, r.query);
    ASSERT_TRUE(rt.ok());
    EXPECT_LT(rt->row_count(), table->row_count()) << r.description;
    EXPECT_EQ(rt->column_count(), table->column_count());
    EXPECT_FALSE(core::ExampleRowIndexes(r, *rt).empty()) << r.description;
  }
  auto perc = core::SubsetPercentile(*ds->store, st, *table);
  ASSERT_TRUE(perc.ok());
  for (const core::ExploreState& r : *perc) {
    auto rt = sparql::Execute(*ds->store, r.query);
    ASSERT_TRUE(rt.ok());
    EXPECT_LT(rt->row_count(), table->row_count()) << r.description;
    EXPECT_FALSE(core::ExampleRowIndexes(r, *rt).empty()) << r.description;
  }

  // Problem 2c: same dimensions, example kept.
  auto sim = core::SimilaritySearch(*ds->store, st, *table);
  ASSERT_TRUE(sim.ok());
  for (const core::ExploreState& r : *sim) {
    auto rt = sparql::Execute(*ds->store, r.query);
    ASSERT_TRUE(rt.ok());
    EXPECT_EQ(rt->column_count(), table->column_count());
    EXPECT_FALSE(core::ExampleRowIndexes(r, *rt).empty()) << r.description;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Tuples, ReolapPropertyTest,
    ::testing::Values(ReolapCase{101, "Germany", nullptr},
                      ReolapCase{102, "Syria", "2014"},
                      ReolapCase{103, "Asia", nullptr},
                      ReolapCase{104, "France", "Q3 2015"},
                      ReolapCase{105, "18-34", "Africa"},
                      ReolapCase{106, "October 2012", nullptr},
                      ReolapCase{107, "High income", "Sweden"}));

// --- TextIndex properties ----------------------------------------------------------

class TextIndexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TextIndexPropertyTest, EveryMemberLabelIsFindable) {
  auto ds = qb::Generate(qb::EurostatSpec(500, GetParam()));
  ASSERT_TRUE(ds.ok());
  rdf::TextIndex text(*ds->store);
  util::Rng rng(GetParam());
  for (const qb::LevelSpec& level : ds->spec.levels) {
    // Probe a few labels of each level.
    for (int probe = 0; probe < 3; ++probe) {
      const std::string& label =
          level.labels[rng.Uniform(level.labels.size())];
      std::vector<rdf::TermId> hits = text.Match(label);
      ASSERT_FALSE(hits.empty()) << label;
      // The literal's exact text matches case-insensitively.
      for (rdf::TermId id : hits) {
        EXPECT_EQ(util::ToLower(ds->store->term(id).value),
                  util::ToLower(label));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextIndexPropertyTest,
                         ::testing::Values(201, 202, 203));

// --- N-Triples writer/parser properties --------------------------------------------

class NTriplesPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// parse(write(parse(x))) == parse(x): serializing a store and re-parsing
// it yields exactly the same triples, even when literal lexical forms
// contain quotes, backslashes, newlines, and tabs.
TEST_P(NTriplesPropertyTest, WriteParseRoundTripIsIdentity) {
  util::Rng rng(GetParam());
  const char kNasty[] = {'"', '\\', '\n', '\r', '\t', ' ', 'x', '7', '.'};
  rdf::TripleStore store;
  std::vector<rdf::Term> subjects, predicates, objects;
  for (int i = 0; i < 8; ++i) {
    subjects.push_back(rdf::Term::Iri("http://x/s" + std::to_string(i)));
    predicates.push_back(rdf::Term::Iri("http://x/p" + std::to_string(i)));
  }
  for (int i = 0; i < 24; ++i) {
    switch (rng.Uniform(4)) {
      case 0:
        objects.push_back(rdf::Term::Iri("http://x/o" + std::to_string(i)));
        break;
      case 1:
        objects.push_back(rdf::Term::IntegerLiteral(
            static_cast<int64_t>(rng.Uniform(1000))));
        break;
      default: {
        std::string lex;
        size_t len = rng.Uniform(12);
        for (size_t j = 0; j < len; ++j) {
          lex += kNasty[rng.Uniform(sizeof(kNasty))];
        }
        objects.push_back(rdf::Term::StringLiteral(lex));
        break;
      }
    }
  }
  for (int i = 0; i < 120; ++i) {
    store.Add(subjects[rng.Uniform(subjects.size())],
              predicates[rng.Uniform(predicates.size())],
              objects[rng.Uniform(objects.size())]);
  }
  store.Freeze();

  std::ostringstream first;
  rdf::WriteNTriples(store, first);
  rdf::TripleStore reparsed;
  ASSERT_TRUE(rdf::ParseNTriples(first.str(), &reparsed).ok());
  reparsed.Freeze();
  ASSERT_EQ(reparsed.size(), store.size());

  // Compare term-level triple sets (ids may differ between the stores).
  auto rendered = [](const rdf::TripleStore& s) {
    std::multiset<std::string> out;
    for (const rdf::EncodedTriple& t :
         s.Match(rdf::TriplePattern{})) {
      out.insert(rdf::ToNTriples(s.term(t.s)) + " " +
                 rdf::ToNTriples(s.term(t.p)) + " " +
                 rdf::ToNTriples(s.term(t.o)));
    }
    return out;
  };
  EXPECT_EQ(rendered(store), rendered(reparsed));

  // And the serialization itself is a fixed point up to line order (the
  // writer emits in intern order, which reparsing permutes).
  auto sorted_lines = [](const std::string& text) {
    std::multiset<std::string> lines;
    std::istringstream in(text);
    for (std::string line; std::getline(in, line);) lines.insert(line);
    return lines;
  };
  std::ostringstream second;
  rdf::WriteNTriples(reparsed, second);
  EXPECT_EQ(sorted_lines(first.str()), sorted_lines(second.str()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NTriplesPropertyTest,
                         ::testing::Values(301, 302, 303, 304));

}  // namespace
}  // namespace re2xolap
