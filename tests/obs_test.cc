#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/query_profile.h"
#include "obs/trace.h"
#include "tests/json_validator.h"
#include "util/thread_pool.h"

namespace re2xolap {
namespace {

using obs::Histogram;
using obs::MetricsRegistry;
using obs::ProfileNode;
using obs::Span;
using obs::Tracer;

/// Restores the global tracer to disabled+empty whatever the test did.
class TracerGuard {
 public:
  TracerGuard() {
    Tracer::Global().Clear();
    Tracer::Global().SetEnabled(true);
  }
  ~TracerGuard() {
    Tracer::Global().SetEnabled(false);
    Tracer::Global().Clear();
  }
};

// --- tracing ---------------------------------------------------------------

TEST(TraceTest, DisabledSpansAreNoOps) {
  Tracer::Global().SetEnabled(false);
  Tracer::Global().Clear();
  {
    Span s("should.not.record");
    s.SetAttr("k", 1.0);
    EXPECT_FALSE(s.active());
    EXPECT_EQ(obs::CurrentSpan(), 0u);
  }
  EXPECT_EQ(Tracer::Global().span_count(), 0u);
}

TEST(TraceTest, NestedSpansFormAHierarchy) {
  TracerGuard guard;
  {
    Span outer("outer");
    {
      Span inner("inner");
      inner.SetAttr("work", uint64_t{42});
    }
  }
  auto events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Snapshot is ordered by start time: outer first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].parent, 0u);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].parent, events[0].id);
  ASSERT_EQ(events[1].attrs.size(), 1u);
  EXPECT_EQ(events[1].attrs[0].key, "work");
  EXPECT_TRUE(events[1].attrs[0].numeric);
}

TEST(TraceTest, ParallelForPropagatesTheCallerSpan) {
  TracerGuard guard;
  util::ThreadPool pool(4);
  obs::SpanId parent_id = 0;
  constexpr size_t kTasks = 16;
  {
    Span parent("parent");
    parent_id = obs::CurrentSpan();
    ASSERT_NE(parent_id, 0u);
    pool.ParallelFor(kTasks, [&](size_t) { Span child("child"); });
  }
  auto events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), kTasks + 1);
  size_t children = 0;
  for (const obs::SpanEvent& ev : events) {
    if (ev.name != "child") continue;
    ++children;
    EXPECT_EQ(ev.parent, parent_id)
        << "child span lost its ParallelFor parent";
  }
  EXPECT_EQ(children, kTasks);
}

TEST(TraceTest, ChromeTraceExportIsWellFormedJson) {
  TracerGuard guard;
  util::ThreadPool pool(4);
  {
    Span parent("capture \"quoted\"\n");  // exercises JSON escaping
    pool.ParallelFor(8, [&](size_t) { Span child("child"); });
  }
  std::string json = Tracer::Global().ChromeTraceJson();
  std::string error;
  EXPECT_TRUE(re2xolap::testing::IsValidJson(json, &error)) << error;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST(TraceTest, ClearDiscardsSpans) {
  TracerGuard guard;
  { Span s("x"); }
  EXPECT_EQ(Tracer::Global().span_count(), 1u);
  Tracer::Global().Clear();
  EXPECT_EQ(Tracer::Global().span_count(), 0u);
}

// --- metrics ---------------------------------------------------------------

TEST(MetricsTest, CounterAndGaugeBasics) {
  obs::Counter c;
  c.Inc();
  c.Inc(4);
  EXPECT_EQ(c.value(), 5u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);

  obs::Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(MetricsTest, HistogramExactAggregates) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);

  h.Observe(3.0);
  h.Observe(1.0);
  h.Observe(8.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 12.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
}

TEST(MetricsTest, HistogramPercentilesMatchExactWithinBucketError) {
  Histogram h;
  std::vector<double> values;
  for (int i = 1; i <= 2000; ++i) {
    values.push_back(static_cast<double>(i) * 0.5);  // 0.5 .. 1000
    h.Observe(values.back());
  }
  std::sort(values.begin(), values.end());
  // Bucket width is 2^(1/4); the geometric-midpoint estimate is within
  // 2^(1/8)-1 (~9%) of the true quantile. Allow 10% for rank rounding.
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    double exact = values[static_cast<size_t>(q * (values.size() - 1))];
    double est = h.Percentile(q);
    EXPECT_NEAR(est, exact, exact * 0.10)
        << "quantile " << q << " estimate " << est << " vs exact " << exact;
  }
  // Extremes stay clamped into the observed range and stay ordered.
  EXPECT_GE(h.Percentile(0.0), h.min());
  EXPECT_LE(h.Percentile(1.0), h.max());
  EXPECT_LE(h.Percentile(0.0), h.Percentile(1.0));
}

TEST(MetricsTest, HistogramBucketMath) {
  // Upper bounds grow monotonically.
  double prev = Histogram::BucketUpperBound(1);
  for (int b = 2; b < Histogram::kNumBuckets - 1; ++b) {
    double ub = Histogram::BucketUpperBound(b);
    EXPECT_GT(ub, prev);
    // Sub-bucket ratio is 2^(1/4).
    EXPECT_NEAR(ub / prev, std::exp2(0.25), 1e-9);
    prev = ub;
  }

  // A single observation lands in exactly one bucket whose bounds
  // bracket the value.
  Histogram h;
  const double v = 10.0;
  h.Observe(v);
  int hits = 0;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    if (h.bucket_count(b) == 0) continue;
    ++hits;
    EXPECT_GE(Histogram::BucketUpperBound(b), v);
    if (b > 1) EXPECT_LT(Histogram::BucketUpperBound(b - 1), v);
  }
  EXPECT_EQ(hits, 1);

  // Non-positive values fall into the underflow bucket and estimate as 0.
  Histogram u;
  u.Observe(0.0);
  u.Observe(-5.0);
  EXPECT_EQ(u.count(), 2u);
  EXPECT_EQ(u.bucket_count(0), 2u);
  EXPECT_DOUBLE_EQ(u.Percentile(0.5), 0.0);
}

TEST(MetricsTest, RegistryReturnsStableRefsAndExportsJson) {
  auto& reg = MetricsRegistry::Global();
  obs::Counter& c1 = reg.GetCounter("obs_test.counter");
  obs::Counter& c2 = reg.GetCounter("obs_test.counter");
  EXPECT_EQ(&c1, &c2);
  c1.Inc(7);
  reg.GetGauge("obs_test.gauge").Set(1.5);
  reg.GetHistogram("obs_test.hist.millis").Observe(4.0);

  std::string json = reg.ToJson();
  std::string error;
  EXPECT_TRUE(re2xolap::testing::IsValidJson(json, &error)) << error;
  EXPECT_NE(json.find("\"obs_test.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(MetricsTest, PrometheusExportFormat) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("obs_test.prom.count").Inc(3);
  reg.GetGauge("obs_test.prom.gauge").Set(2.0);
  obs::Histogram& h = reg.GetHistogram("obs_test.prom.millis");
  h.Observe(1.0);
  h.Observe(100.0);

  std::string text = reg.ToPrometheus();
  // Names are sanitized to [a-zA-Z0-9_:].
  EXPECT_NE(text.find("# TYPE obs_test_prom_count counter"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_count 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_prom_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_prom_millis histogram"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_millis_bucket{le=\""), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_millis_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_millis_sum"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_millis_count 2"), std::string::npos);
}

TEST(MetricsTest, SnapshotAndJsonIncludeP999) {
  Histogram h;
  std::vector<double> values;
  for (int i = 1; i <= 2000; ++i) {
    values.push_back(static_cast<double>(i) * 0.5);  // 0.5 .. 1000
    h.Observe(values.back());
  }
  obs::HistogramSnapshot s = obs::SnapshotOf(h);
  EXPECT_EQ(s.count, 2000u);
  EXPECT_LE(s.p99, s.p999);
  EXPECT_LE(s.p999, s.max);
  const double exact = values[static_cast<size_t>(0.999 * (values.size() - 1))];
  EXPECT_NEAR(s.p999, exact, exact * 0.10);

  MetricsRegistry::Global().GetHistogram("obs_test.p999.millis").Observe(1.0);
  const std::string json = MetricsRegistry::Global().ToJson();
  std::string error;
  EXPECT_TRUE(re2xolap::testing::IsValidJson(json, &error)) << error;
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
}

/// Parses `_bucket{le="X"} N` lines of one histogram out of a Prometheus
/// exposition, in document order.
std::vector<std::pair<std::string, uint64_t>> ParseBuckets(
    const std::string& text, const std::string& prefix) {
  std::vector<std::pair<std::string, uint64_t>> out;
  const std::string marker = prefix + "_bucket{le=\"";
  size_t pos = 0;
  while ((pos = text.find(marker, pos)) != std::string::npos) {
    const size_t le_start = pos + marker.size();
    const size_t le_end = text.find('"', le_start);
    const size_t val_end = text.find('\n', le_end);
    out.emplace_back(
        text.substr(le_start, le_end - le_start),
        std::stoull(text.substr(le_end + 3, val_end - le_end - 3)));
    pos = val_end;
  }
  return out;
}

TEST(MetricsTest, PrometheusBucketsAreCumulativeAndEndAtInf) {
  auto& reg = MetricsRegistry::Global();
  Histogram& h = reg.GetHistogram("obs_test.conformance.millis");
  h.Observe(0.5);
  h.Observe(1.0);
  h.Observe(100.0);
  h.Observe(1e12);  // overflow bucket: beyond the largest finite bound

  const std::string text = reg.ToPrometheus();
  const std::string prefix = "obs_test_conformance_millis";
  auto buckets = ParseBuckets(text, prefix);
  ASSERT_GE(buckets.size(), 2u);

  // Exactly one +Inf bucket, and it comes last.
  size_t inf_lines = 0;
  for (const auto& [le, n] : buckets) inf_lines += le == "+Inf" ? 1 : 0;
  EXPECT_EQ(inf_lines, 1u);
  EXPECT_EQ(buckets.back().first, "+Inf");

  // le thresholds strictly increase; cumulative counts never decrease.
  double prev_le = -1;
  uint64_t prev_n = 0;
  for (const auto& [le, n] : buckets) {
    const double bound =
        le == "+Inf" ? std::numeric_limits<double>::infinity() : std::stod(le);
    EXPECT_GT(bound, prev_le) << "le=" << le;
    EXPECT_GE(n, prev_n) << "le=" << le;
    prev_le = bound;
    prev_n = n;
  }

  // +Inf carries every observation (the overflow one included) and agrees
  // with _count; _sum is present.
  EXPECT_EQ(buckets.back().second, 4u);
  EXPECT_NE(text.find(prefix + "_count 4"), std::string::npos);
  EXPECT_NE(text.find(prefix + "_sum "), std::string::npos);
}

TEST(MetricsTest, PrometheusExportIsConsistentUnderConcurrentObserve) {
  auto& reg = MetricsRegistry::Global();
  Histogram& h = reg.GetHistogram("obs_test.race.millis");
  const std::string prefix = "obs_test_race_millis";
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&h, &stop, t] {
      double v = 0.1 * (t + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        h.Observe(v);
        v = v < 1e6 ? v * 1.5 : 0.1;
      }
    });
  }
  // Every export taken mid-stream must be self-consistent: cumulative
  // buckets monotone and +Inf equal to _count.
  for (int round = 0; round < 50; ++round) {
    const std::string text = reg.ToPrometheus();
    auto buckets = ParseBuckets(text, prefix);
    ASSERT_FALSE(buckets.empty());
    uint64_t prev_n = 0;
    for (const auto& [le, n] : buckets) {
      EXPECT_GE(n, prev_n) << "round " << round << " le=" << le;
      prev_n = n;
    }
    ASSERT_EQ(buckets.back().first, "+Inf");
    const size_t count_pos = text.find(prefix + "_count ");
    ASSERT_NE(count_pos, std::string::npos);
    const uint64_t count = std::stoull(
        text.substr(count_pos + prefix.size() + 7,
                    text.find('\n', count_pos) - count_pos));
    EXPECT_EQ(buckets.back().second, count) << "round " << round;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : writers) w.join();
}

// --- query profile ---------------------------------------------------------

TEST(QueryProfileTest, TreeAggregatesAndVisitOrder) {
  ProfileNode root("select");
  root.rows_out = 3;
  ProfileNode& join = root.AddChild("join");
  join.scanned = 10;
  join.rows_out = 5;
  ProfileNode& scan = join.AddChild("scan");
  scan.scanned = 90;
  scan.rows_out = 20;
  root.AddChild("limit").rows_out = 3;

  EXPECT_EQ(root.NodeCount(), 4u);
  EXPECT_EQ(root.TotalScanned(), 100u);
  EXPECT_EQ(root.TotalRowsOut(), 31u);

  std::vector<std::pair<int, std::string>> visited;
  obs::VisitProfile(root, [&](int depth, const ProfileNode& n) {
    visited.emplace_back(depth, n.label);
  });
  ASSERT_EQ(visited.size(), 4u);
  EXPECT_EQ(visited[0], (std::pair<int, std::string>{0, "select"}));
  EXPECT_EQ(visited[1], (std::pair<int, std::string>{1, "join"}));
  EXPECT_EQ(visited[2], (std::pair<int, std::string>{2, "scan"}));
  EXPECT_EQ(visited[3], (std::pair<int, std::string>{1, "limit"}));
}

}  // namespace
}  // namespace re2xolap
