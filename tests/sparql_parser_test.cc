#include <gtest/gtest.h>

#include "sparql/lexer.h"
#include "sparql/parser.h"

namespace re2xolap::sparql {
namespace {

// --- Lexer --------------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  auto r = Tokenize("SELECT ?x WHERE { ?x <http://p> \"v\" . }");
  ASSERT_TRUE(r.ok());
  const std::vector<Token>& t = *r;
  EXPECT_EQ(t[0].kind, TokenKind::kIdent);
  EXPECT_EQ(t[0].value, "SELECT");
  EXPECT_EQ(t[1].kind, TokenKind::kVariable);
  EXPECT_EQ(t[1].value, "x");
  EXPECT_EQ(t[3].kind, TokenKind::kLBrace);
  EXPECT_EQ(t[5].kind, TokenKind::kIri);
  EXPECT_EQ(t[5].value, "http://p");
  EXPECT_EQ(t[6].kind, TokenKind::kString);
  EXPECT_EQ(t[6].value, "v");
  EXPECT_EQ(t.back().kind, TokenKind::kEof);
}

TEST(LexerTest, DistinguishesIriFromLessThan) {
  auto r = Tokenize("FILTER (?x < 5) . ?y <http://iri> ?z");
  ASSERT_TRUE(r.ok());
  bool saw_lt = false, saw_iri = false;
  for (const Token& t : *r) {
    if (t.kind == TokenKind::kLt) saw_lt = true;
    if (t.kind == TokenKind::kIri) saw_iri = true;
  }
  EXPECT_TRUE(saw_lt);
  EXPECT_TRUE(saw_iri);
}

TEST(LexerTest, Operators) {
  auto r = Tokenize("= != < <= > >= && || ! ^^ /");
  ASSERT_TRUE(r.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *r) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kEq, TokenKind::kNe, TokenKind::kLt, TokenKind::kLe,
                TokenKind::kGt, TokenKind::kGe, TokenKind::kAndAnd,
                TokenKind::kOrOr, TokenKind::kBang, TokenKind::kCaretCaret,
                TokenKind::kSlash, TokenKind::kEof}));
}

TEST(LexerTest, Numbers) {
  auto r = Tokenize("42 -3 2.5 1e3 ?x");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].kind, TokenKind::kInteger);
  EXPECT_EQ((*r)[1].kind, TokenKind::kInteger);
  EXPECT_EQ((*r)[1].value, "-3");
  EXPECT_EQ((*r)[2].kind, TokenKind::kDouble);
  EXPECT_EQ((*r)[3].kind, TokenKind::kDouble);
}

TEST(LexerTest, NumberFollowedByStatementDot) {
  auto r = Tokenize("?x <p> 5 .");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[2].kind, TokenKind::kInteger);
  EXPECT_EQ((*r)[2].value, "5");
  EXPECT_EQ((*r)[3].kind, TokenKind::kDot);
}

TEST(LexerTest, PrefixedNames) {
  auto r = Tokenize("xsd:integer prop:citizen");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].kind, TokenKind::kPrefixedName);
  EXPECT_EQ((*r)[0].value, "xsd:integer");
  EXPECT_EQ((*r)[1].value, "prop:citizen");
}

TEST(LexerTest, CommentsSkipped) {
  auto r = Tokenize("SELECT # comment\n ?x");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);  // SELECT, ?x, EOF
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("\"oops").ok());
}

// --- Parser ---------------------------------------------------------------------

TEST(ParserTest, FigureTwoQuery) {
  // The paper's Figure 2 query (with explicit aliases).
  auto r = ParseQuery(R"(
    SELECT ?origin ?dest (SUM(?obsValue) AS ?total) WHERE {
      ?obs <http://t/Country_Origin> / <http://t/In_Continent> ?origin .
      ?obs <http://t/Country_Destination> ?dest .
      ?obs <http://t/Num_Applicants> ?obsValue .
    } GROUP BY ?origin ?dest
  )");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SelectQuery& q = *r;
  ASSERT_EQ(q.items.size(), 3u);
  EXPECT_FALSE(q.items[0].is_aggregate);
  EXPECT_TRUE(q.items[2].is_aggregate);
  EXPECT_EQ(q.items[2].func, AggFunc::kSum);
  EXPECT_EQ(q.items[2].alias, "total");
  // Property path desugared into 2 patterns; 4 patterns total.
  EXPECT_EQ(q.patterns.size(), 4u);
  EXPECT_EQ(q.group_by.size(), 2u);
}

TEST(ParserTest, BareAggregateWithoutParens) {
  auto r = ParseQuery(
      "SELECT ?d SUM(?v) WHERE { ?o <http://p> ?d . ?o <http://m> ?v } "
      "GROUP BY ?d");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->items[1].is_aggregate);
  EXPECT_EQ(r->items[1].OutputName(), "sum_v");
}

TEST(ParserTest, SelectStar) {
  auto r = ParseQuery("SELECT * WHERE { ?s ?p ?o }");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->select_all);
}

TEST(ParserTest, DistinctAndModifiers) {
  auto r = ParseQuery(
      "SELECT DISTINCT ?s WHERE { ?s ?p ?o } ORDER BY DESC(?s) LIMIT 10 "
      "OFFSET 5");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->distinct);
  ASSERT_EQ(r->order_by.size(), 1u);
  EXPECT_FALSE(r->order_by[0].ascending);
  EXPECT_EQ(r->limit, 10u);
  EXPECT_EQ(r->offset, 5u);
}

TEST(ParserTest, FilterExpressions) {
  auto r = ParseQuery(R"(
    SELECT ?s WHERE {
      ?s <http://p> ?v .
      FILTER (?v > 10 && ?v <= 100 || !(?v = 50))
      FILTER (?s IN (<http://a>, <http://b>))
    }
  )");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->filters.size(), 2u);
  EXPECT_EQ(r->filters[0]->kind, ExprKind::kOr);
  EXPECT_EQ(r->filters[1]->kind, ExprKind::kIn);
  EXPECT_EQ(r->filters[1]->in_list.size(), 2u);
}

TEST(ParserTest, Having) {
  auto r = ParseQuery(
      "SELECT ?d (SUM(?v) AS ?t) WHERE { ?o <http://p> ?d . ?o <http://m> ?v "
      "} GROUP BY ?d HAVING (?t >= 100)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->having.size(), 1u);
  EXPECT_EQ(r->having[0]->kind, ExprKind::kCompare);
}

TEST(ParserTest, PrefixDeclarations) {
  auto r = ParseQuery(R"(
    PREFIX ex: <http://example.org/>
    SELECT ?s WHERE { ?s ex:knows ?o }
  )");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->patterns.size(), 1u);
  EXPECT_EQ(AsTerm(r->patterns[0].p).value, "http://example.org/knows");
}

TEST(ParserTest, SemicolonPredicateLists) {
  auto r = ParseQuery(
      "SELECT ?a ?b WHERE { ?s <http://p1> ?a ; <http://p2> ?b . }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->patterns.size(), 2u);
  // Both share the subject variable.
  EXPECT_EQ(AsVar(r->patterns[0].s).name, AsVar(r->patterns[1].s).name);
}

TEST(ParserTest, CountStar) {
  auto r = ParseQuery(
      "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->items[0].count_star);
  EXPECT_EQ(r->items[0].OutputName(), "n");
}

TEST(ParserTest, RdfTypeShorthand) {
  auto r = ParseQuery("SELECT ?s WHERE { ?s a <http://C> }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(AsTerm(r->patterns[0].p).value,
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
}

TEST(ParserTest, TypedLiteralObjects) {
  auto r = ParseQuery(
      "SELECT ?s WHERE { ?s <http://p> \"5\"^^xsd:integer }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const rdf::Term& o = AsTerm(r->patterns[0].o);
  EXPECT_EQ(o.literal_type, rdf::LiteralType::kInteger);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("SELECT WHERE { }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x { ?x ?p ?o ").ok());  // unterminated
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { \"lit\" ?p ?o }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x ?p ?o } GROUP BY").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x ?p ?o } LIMIT ?x").ok());
  EXPECT_FALSE(ParseQuery("SELECT SUM(*) WHERE { ?x ?p ?o }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x ?p ?o } nonsense").ok());
}

TEST(ParserTest, RoundTripThroughToSparql) {
  auto r = ParseQuery(R"(
    SELECT ?d (SUM(?v) AS ?t) WHERE {
      ?o <http://t/dim> ?d .
      ?o <http://t/m> ?v .
      FILTER (?v > 3)
    } GROUP BY ?d HAVING (?t < 100) ORDER BY DESC(?t) LIMIT 5
  )");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string text = ToSparql(*r);
  auto r2 = ParseQuery(text);
  ASSERT_TRUE(r2.ok()) << "reparse failed: " << r2.status().ToString()
                       << "\ntext was:\n"
                       << text;
  EXPECT_EQ(ToSparql(*r2), text);
}

}  // namespace
}  // namespace re2xolap::sparql

namespace re2xolap::sparql {
namespace {

TEST(ValuesTest, DesugarsToInFilter) {
  auto r = ParseQuery(R"(
    SELECT ?s WHERE {
      ?s <http://p> ?o .
      VALUES ?o { <http://a> <http://b> "lit" 5 }
    })");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->filters.size(), 1u);
  EXPECT_EQ(r->filters[0]->kind, ExprKind::kIn);
  EXPECT_EQ(r->filters[0]->var.name, "o");
  EXPECT_EQ(r->filters[0]->in_list.size(), 4u);
}

TEST(ValuesTest, RejectsMalformed) {
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { VALUES ?s { } }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { VALUES { <http://a> } }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { VALUES ?s { <http://a> ").ok());
}

}  // namespace
}  // namespace re2xolap::sparql
