#ifndef RE2XOLAP_TESTS_JSON_VALIDATOR_H_
#define RE2XOLAP_TESTS_JSON_VALIDATOR_H_

// Minimal recursive-descent JSON well-formedness checker for tests (no
// DOM, no dependencies). Validates RFC 8259 syntax: one top-level value,
// strings with escapes, numbers, objects, arrays, true/false/null.

#include <cctype>
#include <string>
#include <string_view>

namespace re2xolap::testing {

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : p_(text.data()), end_(text.data() + text.size()) {}

  /// True when the whole input is exactly one valid JSON value (plus
  /// whitespace). On failure `error()` describes the first problem.
  bool Validate() {
    if (!ParseValue()) return false;
    SkipWs();
    if (p_ != end_) return Fail("trailing characters after value");
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos());
    }
    return false;
  }
  size_t pos() const { return static_cast<size_t>(p_ - start_); }

  void SkipWs() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  bool ParseValue() {
    SkipWs();
    if (p_ == end_) return Fail("unexpected end of input");
    switch (*p_) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return ParseLiteral("true");
      case 'f':
        return ParseLiteral("false");
      case 'n':
        return ParseLiteral("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseLiteral(std::string_view lit) {
    for (char c : lit) {
      if (p_ == end_ || *p_ != c) return Fail("bad literal");
      ++p_;
    }
    return true;
  }

  bool ParseString() {
    ++p_;  // opening quote
    while (p_ != end_) {
      unsigned char c = static_cast<unsigned char>(*p_);
      if (c == '"') {
        ++p_;
        return true;
      }
      if (c < 0x20) return Fail("unescaped control character in string");
      if (c == '\\') {
        ++p_;
        if (p_ == end_) return Fail("dangling escape");
        switch (*p_) {
          case '"':
          case '\\':
          case '/':
          case 'b':
          case 'f':
          case 'n':
          case 'r':
          case 't':
            ++p_;
            break;
          case 'u': {
            ++p_;
            for (int i = 0; i < 4; ++i) {
              if (p_ == end_ ||
                  !std::isxdigit(static_cast<unsigned char>(*p_))) {
                return Fail("bad \\u escape");
              }
              ++p_;
            }
            break;
          }
          default:
            return Fail("bad escape character");
        }
      } else {
        ++p_;
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber() {
    const char* begin = p_;
    if (p_ != end_ && *p_ == '-') ++p_;
    if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
      return Fail("bad number");
    }
    if (*p_ == '0') {
      ++p_;
    } else {
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    if (p_ != end_ && *p_ == '.') {
      ++p_;
      if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
        return Fail("bad fraction");
      }
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      ++p_;
      if (p_ != end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
        return Fail("bad exponent");
      }
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    return p_ != begin;
  }

  bool ParseObject() {
    ++p_;  // '{'
    SkipWs();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (p_ == end_ || *p_ != '"') return Fail("expected object key");
      if (!ParseString()) return false;
      SkipWs();
      if (p_ == end_ || *p_ != ':') return Fail("expected ':'");
      ++p_;
      if (!ParseValue()) return false;
      SkipWs();
      if (p_ == end_) return Fail("unterminated object");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray() {
    ++p_;  // '['
    SkipWs();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    for (;;) {
      if (!ParseValue()) return false;
      SkipWs();
      if (p_ == end_) return Fail("unterminated array");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  const char* p_;
  const char* end_;
  const char* start_ = p_;
  std::string error_;
};

inline bool IsValidJson(std::string_view text, std::string* error = nullptr) {
  JsonValidator v(text);
  bool ok = v.Validate();
  if (!ok && error != nullptr) *error = v.error();
  return ok;
}

}  // namespace re2xolap::testing

#endif  // RE2XOLAP_TESTS_JSON_VALIDATOR_H_
