#include <gtest/gtest.h>

#include "core/virtual_schema_graph.h"
#include "qb/datasets.h"
#include "qb/generator.h"
#include "tests/test_data.h"

namespace re2xolap::core {
namespace {

using re2xolap::testing::BuildFigure1Store;
using re2xolap::testing::kObsClass;

class VsgFigure1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    store = BuildFigure1Store();
    auto r = VirtualSchemaGraph::Build(*store, kObsClass);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    vsg = std::make_unique<VirtualSchemaGraph>(std::move(r).value());
  }
  std::unique_ptr<rdf::TripleStore> store;
  std::unique_ptr<VirtualSchemaGraph> vsg;
};

TEST_F(VsgFigure1Test, DiscoversDimensions) {
  // age, countryOrigin, countryDestination, refPeriod.
  EXPECT_EQ(vsg->dimension_count(), 4u);
}

TEST_F(VsgFigure1Test, DiscoversMeasure) {
  ASSERT_EQ(vsg->measure_count(), 1u);
  EXPECT_EQ(store->term(vsg->measure_predicates()[0]).value,
            "http://test/numApplicants");
}

TEST_F(VsgFigure1Test, DiscoversLevels) {
  // Levels: age, origin-country, dest-country, month, continent, year = 6.
  EXPECT_EQ(vsg->level_count(), 6u);
}

TEST_F(VsgFigure1Test, DiscoversHierarchyPaths) {
  // Paths: age; origin; origin/continent; dest; month; month/year = 6.
  EXPECT_EQ(vsg->level_paths().size(), 6u);
  size_t depth2 = 0;
  for (const LevelPath& p : vsg->level_paths()) {
    if (p.predicates.size() == 2) ++depth2;
  }
  EXPECT_EQ(depth2, 2u);  // origin->continent and month->year
}

TEST_F(VsgFigure1Test, MembersAttachedToLevels) {
  rdf::TermId syria = store->Lookup(rdf::Term::Iri("http://test/origin/syria"));
  ASSERT_NE(syria, rdf::kInvalidTermId);
  std::vector<int> nodes = vsg->NodesOfMember(syria);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_TRUE(vsg->IsMemberOf(syria, nodes[0]));
  EXPECT_EQ(vsg->node(nodes[0]).members.size(), 3u);  // Syria, China, Nigeria
}

TEST_F(VsgFigure1Test, TotalMembersCountsDistinctIris) {
  // 3 origins + 2 continents + 2 dests + 3 months + 2 years + 2 ages = 14.
  EXPECT_EQ(vsg->total_members(), 14u);
}

TEST_F(VsgFigure1Test, AttributePredicatesDiscovered) {
  rdf::TermId label =
      store->Lookup(rdf::Term::Iri(re2xolap::testing::kLabelIri));
  bool found = false;
  for (const VsgNode& n : vsg->nodes()) {
    if (n.is_root) continue;
    for (rdf::TermId p : n.attribute_predicates) {
      if (p == label) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(VsgFigure1Test, PathsToTargetsAreConsistent) {
  for (const LevelPath& p : vsg->level_paths()) {
    ASSERT_GE(p.target_node, 1);
    EXPECT_FALSE(p.predicates.empty());
    EXPECT_EQ(p.dimension_predicate(), p.predicates.front());
    // A path's target must be reachable: check membership is non-empty.
    EXPECT_FALSE(vsg->node(p.target_node).members.empty());
  }
}

TEST_F(VsgFigure1Test, HierarchyCount) {
  // Leaf paths: age; origin/continent; dest; month/year = 4.
  EXPECT_EQ(vsg->hierarchy_count(), 4u);
}

TEST_F(VsgFigure1Test, MemoryUsagePositive) {
  EXPECT_GT(vsg->MemoryUsage(), 0u);
}

TEST(VsgBuildTest, FailsOnUnknownClass) {
  auto store = BuildFigure1Store();
  auto r = VirtualSchemaGraph::Build(*store, "http://test/NoSuchClass");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(VsgBuildTest, StatsPopulated) {
  auto store = BuildFigure1Store();
  VsgBuildStats stats;
  auto r = VirtualSchemaGraph::Build(*store, kObsClass, {}, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(stats.store_scans, 0u);
  EXPECT_GT(stats.members_visited, 0u);
  EXPECT_GE(stats.build_millis, 0.0);
}

TEST(VsgBuildTest, DepthCapStopsRecursion) {
  // A chain a -> b -> c -> d as hierarchy under one dimension.
  rdf::TripleStore store;
  using rdf::Term;
  Term type = Term::Iri(re2xolap::testing::kTypeIri);
  Term cls = Term::Iri("http://t/Obs");
  Term obs = Term::Iri("http://t/obs1");
  store.Add(obs, type, cls);
  store.Add(obs, Term::Iri("http://t/dim"), Term::Iri("http://t/a"));
  store.Add(obs, Term::Iri("http://t/m"), Term::IntegerLiteral(1));
  store.Add(Term::Iri("http://t/a"), Term::Iri("http://t/up"),
            Term::Iri("http://t/b"));
  store.Add(Term::Iri("http://t/b"), Term::Iri("http://t/up"),
            Term::Iri("http://t/c"));
  store.Add(Term::Iri("http://t/c"), Term::Iri("http://t/up"),
            Term::Iri("http://t/d"));
  store.Freeze();
  VsgOptions opts;
  opts.max_depth = 2;
  auto r = VirtualSchemaGraph::Build(store, "http://t/Obs", opts);
  ASSERT_TRUE(r.ok());
  // Depth 2 => levels a and b only.
  EXPECT_EQ(r->level_count(), 2u);
}

TEST(VsgBuildTest, HandlesHierarchyCycles) {
  // a -> b -> a cycle must not hang or blow up.
  rdf::TripleStore store;
  using rdf::Term;
  Term type = Term::Iri(re2xolap::testing::kTypeIri);
  Term cls = Term::Iri("http://t/Obs");
  for (int i = 0; i < 3; ++i) {
    Term obs = Term::Iri("http://t/obs" + std::to_string(i));
    store.Add(obs, type, cls);
    store.Add(obs, Term::Iri("http://t/dim"), Term::Iri("http://t/a"));
    store.Add(obs, Term::Iri("http://t/m"), Term::IntegerLiteral(i));
  }
  store.Add(Term::Iri("http://t/a"), Term::Iri("http://t/next"),
            Term::Iri("http://t/b"));
  store.Add(Term::Iri("http://t/b"), Term::Iri("http://t/next"),
            Term::Iri("http://t/a"));
  store.Freeze();
  auto r = VirtualSchemaGraph::Build(store, "http://t/Obs");
  ASSERT_TRUE(r.ok());
  // Paths must not revisit nodes: a and a->b only.
  EXPECT_EQ(r->level_paths().size(), 2u);
}

TEST(VsgBuildTest, PrettifyIriLocalName) {
  EXPECT_EQ(PrettifyIriLocalName("http://x/countryOrigin"), "Country Origin");
  EXPECT_EQ(PrettifyIriLocalName("http://x/in_continent"), "In Continent");
  EXPECT_EQ(PrettifyIriLocalName("http://x#numApplicants"), "Num Applicants");
  EXPECT_EQ(PrettifyIriLocalName("plain"), "Plain");
}

// --- against the synthetic datasets --------------------------------------------

TEST(VsgDatasetTest, EurostatShapeMatchesTable3) {
  auto ds = qb::Generate(qb::EurostatSpec(2000));
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  auto r = VirtualSchemaGraph::Build(*ds->store,
                                     ds->spec.observation_class);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->dimension_count(), 4u);
  EXPECT_EQ(r->measure_count(), 1u);
  EXPECT_EQ(r->level_count(), 10u);
  EXPECT_EQ(r->hierarchy_count(), 7u);
  // With few observations not every member is referenced; the spec's
  // total is the upper bound and most members should be discovered.
  EXPECT_LE(r->total_members(), 373u);
  EXPECT_GT(r->total_members(), 300u);
}

TEST(VsgDatasetTest, ProductionShape) {
  auto ds = qb::Generate(qb::ProductionSpec(5000));
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  auto r =
      VirtualSchemaGraph::Build(*ds->store, ds->spec.observation_class);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->dimension_count(), 7u);
  EXPECT_EQ(r->level_count(), 10u);
}

}  // namespace
}  // namespace re2xolap::core
