// Snapshot subsystem tests: save/load round-trips (copy and mmap modes),
// engine/session integration, and the corruption suite — truncation, bad
// magic, version skew, single-bit flips — all of which must surface as
// typed Status errors, never UB (the suite runs under ASan/TSan in CI).

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/session.h"
#include "core/virtual_schema_graph.h"
#include "engine/query_engine.h"
#include "rdf/text_index.h"
#include "rdf/triple_store.h"
#include "storage/snapshot.h"
#include "storage/snapshot_io.h"
#include "tests/test_data.h"
#include "util/exec_guard.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace re2xolap {
namespace {

using storage::LoadedSnapshot;
using storage::SnapshotInfo;
using storage::SnapshotLoadOptions;
using storage::SnapshotWriteOptions;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "re2x_storage_test_" + name;
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Builds the Figure-1 store with text index + schema graph and saves a
/// full image to `path`.
struct Fixture {
  std::unique_ptr<rdf::TripleStore> store;
  std::unique_ptr<rdf::TextIndex> text;
  std::unique_ptr<core::VirtualSchemaGraph> vsg;

  explicit Fixture(const std::string& path = "") {
    store = testing::BuildFigure1Store();
    text = std::make_unique<rdf::TextIndex>(*store);
    auto graph =
        core::VirtualSchemaGraph::Build(*store, testing::kObsClass);
    EXPECT_TRUE(graph.ok()) << graph.status();
    vsg = std::make_unique<core::VirtualSchemaGraph>(std::move(graph).value());
    if (!path.empty()) {
      storage::VsgImage image = storage::MakeVsgImage(*vsg);
      util::Status st =
          storage::SaveSnapshot(path, *store, text.get(), &image);
      EXPECT_TRUE(st.ok()) << st;
    }
  }
};

void ExpectStoresMatch(const rdf::TripleStore& a, const rdf::TripleStore& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.dictionary().size(), b.dictionary().size());
  EXPECT_EQ(a.freeze_epoch(), b.freeze_epoch());
  // Term-by-term: ids were assigned in the same order.
  a.dictionary().ForEach([&](rdf::TermId id, const rdf::Term& t) {
    EXPECT_EQ(b.term(id), t);
  });
  // Pattern results agree for a spread of shapes.
  auto spo = a.spo_span();
  for (size_t i = 0; i < spo.size(); i += 3) {
    const rdf::EncodedTriple& t = spo[i];
    EXPECT_EQ(a.Match({t.s, 0, 0}).size(), b.Match({t.s, 0, 0}).size());
    EXPECT_EQ(a.Match({0, t.p, 0}).size(), b.Match({0, t.p, 0}).size());
    EXPECT_EQ(a.Match({0, 0, t.o}).size(), b.Match({0, 0, t.o}).size());
    EXPECT_TRUE(b.Exists({t.s, t.p, t.o}));
  }
  // Planner statistics restored exactly.
  for (rdf::TermId p : a.AllPredicates()) {
    EXPECT_EQ(a.predicate_stats(p).triple_count,
              b.predicate_stats(p).triple_count);
    EXPECT_EQ(a.predicate_stats(p).distinct_subjects,
              b.predicate_stats(p).distinct_subjects);
    EXPECT_EQ(a.predicate_stats(p).distinct_objects,
              b.predicate_stats(p).distinct_objects);
  }
}

// --- round trips -------------------------------------------------------------

TEST(SnapshotTest, RoundTripCopyMode) {
  const std::string path = TempPath("roundtrip.snap");
  Fixture fx(path);

  auto loaded = storage::LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->store->frozen());
  // Heap mode: the indexes are views into the owned buffer, so the file
  // is not needed after the load returns.
  EXPECT_TRUE(loaded->store->borrows_snapshot());
  std::remove(path.c_str());
  ExpectStoresMatch(*fx.store, *loaded->store);

  // Text index round-trips.
  ASSERT_NE(loaded->text, nullptr);
  EXPECT_EQ(loaded->text->indexed_literal_count(),
            fx.text->indexed_literal_count());
  EXPECT_EQ(loaded->text->ExactMatch("Germany"), fx.text->ExactMatch("Germany"));
  EXPECT_EQ(loaded->text->Match("October 2014"), fx.text->Match("October 2014"));

  // Schema graph parts round-trip and reconstruct.
  ASSERT_TRUE(loaded->vsg.has_value());
  auto graph = core::VirtualSchemaGraph::FromParts(
      loaded->vsg->nodes, loaded->vsg->edges, loaded->vsg->measures,
      loaded->vsg->observation_attrs);
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_EQ(graph->dimension_count(), fx.vsg->dimension_count());
  EXPECT_EQ(graph->level_count(), fx.vsg->level_count());
  EXPECT_EQ(graph->total_members(), fx.vsg->total_members());
  EXPECT_EQ(graph->measure_predicates(), fx.vsg->measure_predicates());
}

TEST(SnapshotTest, RoundTripMmapModeIsZeroCopyUntilMutation) {
  const std::string path = TempPath("mmap.snap");
  Fixture fx(path);

  SnapshotLoadOptions options;
  options.use_mmap = true;
  auto loaded = storage::LoadSnapshot(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->store->borrows_snapshot());
  ExpectStoresMatch(*fx.store, *loaded->store);

  // Mutating a borrowed store materializes owned copies; the store keeps
  // working after the mapping is released.
  loaded->store->Add(rdf::Term::Iri("http://test/extra"),
                     rdf::Term::Iri("http://test/p"),
                     rdf::Term::StringLiteral("extra"));
  loaded->store->Freeze();
  EXPECT_FALSE(loaded->store->borrows_snapshot());
  EXPECT_EQ(loaded->store->size(), fx.store->size() + 1);
  std::remove(path.c_str());
}

TEST(SnapshotTest, ParallelSaveLoadMatchesSerial) {
  const std::string serial_path = TempPath("serial.snap");
  const std::string parallel_path = TempPath("parallel.snap");
  Fixture fx(serial_path);

  util::ThreadPool pool(4);
  SnapshotWriteOptions write_options;
  write_options.pool = &pool;
  storage::VsgImage image = storage::MakeVsgImage(*fx.vsg);
  ASSERT_TRUE(storage::SaveSnapshot(parallel_path, *fx.store, fx.text.get(),
                                    &image, write_options)
                  .ok());
  // Deterministic format: parallel and serial encodes produce identical
  // bytes.
  EXPECT_EQ(ReadAll(serial_path), ReadAll(parallel_path));

  SnapshotLoadOptions load_options;
  load_options.pool = &pool;
  auto loaded = storage::LoadSnapshot(parallel_path, load_options);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectStoresMatch(*fx.store, *loaded->store);
  std::remove(serial_path.c_str());
  std::remove(parallel_path.c_str());
}

TEST(SnapshotTest, FreezeEpochSurvivesSoEngineCachesBehaveIdentically) {
  const std::string path = TempPath("epoch.snap");
  Fixture fx;
  // Re-freeze to move the epoch past 1; the image must carry the exact
  // value.
  fx.store->Add(rdf::Term::Iri("http://test/x"),
                rdf::Term::Iri("http://test/p"),
                rdf::Term::StringLiteral("x"));
  fx.store->Freeze();
  ASSERT_EQ(fx.store->freeze_epoch(), 2u);
  ASSERT_TRUE(
      storage::SaveSnapshot(path, *fx.store, nullptr, nullptr).ok());

  auto loaded = storage::LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->store->freeze_epoch(), 2u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, InspectReportsHeaderWithoutLoading) {
  const std::string path = TempPath("inspect.snap");
  Fixture fx(path);
  auto info = storage::InspectSnapshot(path);
  ASSERT_TRUE(info.ok()) << info.status();
  // Raw stores write version-1 images; compressed stores version 2. Either
  // way the section count is 7 (one index trio + dict/stats/text/vsg).
  EXPECT_EQ(info->version, fx.store->compressed_index()
                               ? storage::kSnapshotVersionCompressed
                               : storage::kSnapshotVersion);
  EXPECT_EQ(info->triple_count, fx.store->size());
  EXPECT_EQ(info->term_count, fx.store->dictionary().size());
  EXPECT_TRUE(info->has_text_index);
  EXPECT_TRUE(info->has_vsg);
  EXPECT_EQ(info->sections.size(), 7u);  // dict + 3 indexes + stats + text + vsg
  std::remove(path.c_str());
}

// --- save preconditions ------------------------------------------------------

TEST(SnapshotTest, SaveRejectsUnfrozenAndEmptyStores) {
  rdf::TripleStore unfrozen;
  unfrozen.Add(rdf::Term::Iri("a"), rdf::Term::Iri("p"), rdf::Term::Iri("b"));
  EXPECT_TRUE(storage::SaveSnapshot(TempPath("never.snap"), unfrozen, nullptr,
                                    nullptr)
                  .IsInvalidArgument());

  rdf::TripleStore empty;
  empty.Freeze();
  EXPECT_TRUE(storage::SaveSnapshot(TempPath("never.snap"), empty, nullptr,
                                    nullptr)
                  .IsInvalidArgument());
}

// --- corruption suite --------------------------------------------------------

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs discovered tests as separate concurrent
    // processes, and a shared path would race.
    path_ = TempPath(
        std::string(::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name()) +
        "_corrupt.snap");
    fx_ = std::make_unique<Fixture>(path_);
    bytes_ = ReadAll(path_);
    ASSERT_GT(bytes_.size(), 128u);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// Every load mode must report the same typed failure.
  void ExpectLoadFails(util::StatusCode code, const std::string& hint) {
    for (bool mmap : {false, true}) {
      SnapshotLoadOptions options;
      options.use_mmap = mmap;
      auto loaded = storage::LoadSnapshot(path_, options);
      ASSERT_FALSE(loaded.ok()) << "mmap=" << mmap;
      EXPECT_EQ(loaded.status().code(), code)
          << "mmap=" << mmap << ": " << loaded.status();
      EXPECT_NE(loaded.status().message().find(hint), std::string::npos)
          << loaded.status();
    }
  }

  std::string path_;
  std::unique_ptr<Fixture> fx_;
  std::vector<char> bytes_;
};

TEST_F(SnapshotCorruptionTest, MissingFileIsNotFound) {
  auto loaded = storage::LoadSnapshot(TempPath("does_not_exist.snap"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound()) << loaded.status();
}

TEST_F(SnapshotCorruptionTest, BadMagic) {
  bytes_[0] = 'X';
  WriteAll(path_, bytes_);
  ExpectLoadFails(util::StatusCode::kParseError, "bad magic");
  EXPECT_TRUE(storage::InspectSnapshot(path_).status().IsParseError());
  EXPECT_TRUE(storage::VerifySnapshot(path_).status().IsParseError());
}

TEST_F(SnapshotCorruptionTest, VersionSkewIsInvalidArgument) {
  // Version field sits right after the 8-byte magic.
  bytes_[8] = 99;
  WriteAll(path_, bytes_);
  ExpectLoadFails(util::StatusCode::kInvalidArgument, "version");
}

TEST_F(SnapshotCorruptionTest, TruncatedFile) {
  bytes_.resize(bytes_.size() / 2);
  WriteAll(path_, bytes_);
  ExpectLoadFails(util::StatusCode::kParseError, "truncated");
  EXPECT_TRUE(storage::VerifySnapshot(path_).status().IsParseError());
}

TEST_F(SnapshotCorruptionTest, TruncatedBelowFixedHeader) {
  bytes_.resize(17);
  WriteAll(path_, bytes_);
  ExpectLoadFails(util::StatusCode::kParseError, "truncated");
  EXPECT_TRUE(storage::InspectSnapshot(path_).status().IsParseError());
}

TEST_F(SnapshotCorruptionTest, PayloadBitFlipFailsChecksum) {
  bytes_[bytes_.size() - 7] ^= 0x40;  // inside the last section's payload
  WriteAll(path_, bytes_);
  ExpectLoadFails(util::StatusCode::kParseError, "checksum");
  EXPECT_TRUE(storage::VerifySnapshot(path_).status().IsParseError());
  // Inspect only reads the header, so it still succeeds — by design.
  EXPECT_TRUE(storage::InspectSnapshot(path_).ok());
}

TEST_F(SnapshotCorruptionTest, HeaderBitFlipFailsHeaderChecksum) {
  bytes_[70] ^= 0x01;  // inside the section table
  WriteAll(path_, bytes_);
  ExpectLoadFails(util::StatusCode::kParseError, "checksum");
}

TEST_F(SnapshotCorruptionTest, ChecksumVerificationCanBeDisabledButBoundsStillHold) {
  bytes_[bytes_.size() - 7] ^= 0x40;
  WriteAll(path_, bytes_);
  SnapshotLoadOptions options;
  options.verify_checksums = false;
  // The flipped byte lands in the vsg section's id lists; either the load
  // succeeds with slightly different graph parts or fails a structural
  // check — both acceptable, crashing is not.
  auto loaded = storage::LoadSnapshot(path_, options);
  if (!loaded.ok()) {
    EXPECT_TRUE(loaded.status().IsParseError()) << loaded.status();
  }
}

// --- guardrails & failpoints -------------------------------------------------

TEST(SnapshotTest, CancelledGuardAbortsSaveAndLoad) {
  const std::string path = TempPath("guard.snap");
  Fixture fx(path);
  util::CancellationToken token;
  token.Cancel();
  util::ExecGuard guard(util::ExecGuard::Limits{}, &token);

  SnapshotWriteOptions write_options;
  write_options.guard = &guard;
  EXPECT_TRUE(storage::SaveSnapshot(TempPath("never2.snap"), *fx.store,
                                    nullptr, nullptr, write_options)
                  .IsCancelled());

  SnapshotLoadOptions load_options;
  load_options.guard = &guard;
  EXPECT_TRUE(storage::LoadSnapshot(path, load_options)
                  .status()
                  .IsCancelled());
  std::remove(path.c_str());
}

TEST(SnapshotTest, FailpointsInjectTransientErrors) {
  const std::string path = TempPath("failpoint.snap");
  Fixture fx(path);
  auto& registry = util::FailpointRegistry::Global();

  registry.Arm("snapshot.save",
               {util::FailpointKind::kError, 0, /*remaining=*/1});
  EXPECT_TRUE(storage::SaveSnapshot(TempPath("never3.snap"), *fx.store,
                                    nullptr, nullptr)
                  .IsUnavailable());

  registry.Arm("snapshot.load",
               {util::FailpointKind::kError, 0, /*remaining=*/1});
  EXPECT_TRUE(storage::LoadSnapshot(path).status().IsUnavailable());
  registry.DisarmAll();

  // After the budgeted fire, both work again.
  EXPECT_TRUE(storage::LoadSnapshot(path).ok());
  std::remove(path.c_str());
}

// --- engine & session integration --------------------------------------------

TEST(SnapshotTest, EngineOpenSnapshotServesIdenticalQueries) {
  const std::string path = TempPath("engine.snap");
  Fixture fx;
  engine::QueryEngine cold(*fx.store);
  ASSERT_TRUE(cold.SaveSnapshot(path).ok());

  auto opened = engine::QueryEngine::OpenSnapshot(path);
  ASSERT_TRUE(opened.ok()) << opened.status();
  ASSERT_NE(opened->engine, nullptr);

  const std::string query =
      "SELECT ?o ?v WHERE { ?o <http://test/numApplicants> ?v . }";
  auto a = cold.ExecuteText(query);
  auto b = opened->engine->ExecuteText(query);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ((*a)->rows().size(), (*b)->rows().size());

  // Identical epoch -> a second execution is a cache hit on both sides.
  ASSERT_TRUE(opened->engine->ExecuteText(query).ok());
  EXPECT_EQ(opened->engine->cache_stats().result_hits, 1u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, SessionRoundTripExploresIdentically) {
  const std::string path = TempPath("session.snap");
  Fixture fx;
  core::Session cold(fx.store.get(), fx.vsg.get(), fx.text.get());
  ASSERT_TRUE(cold.SaveSnapshot(path).ok());

  auto warm = core::Session::OpenSnapshot(path);
  ASSERT_TRUE(warm.ok()) << warm.status();
  ASSERT_NE(warm->session, nullptr);

  auto cold_candidates = cold.Start({"Germany", "2014"});
  auto warm_candidates = warm->session->Start({"Germany", "2014"});
  ASSERT_TRUE(cold_candidates.ok()) << cold_candidates.status();
  ASSERT_TRUE(warm_candidates.ok()) << warm_candidates.status();
  ASSERT_EQ(cold_candidates->size(), warm_candidates->size());
  ASSERT_FALSE(warm_candidates->empty());

  ASSERT_TRUE(cold.PickCandidate(0).ok());
  ASSERT_TRUE(warm->session->PickCandidate(0).ok());
  auto cold_table = cold.Execute();
  auto warm_table = warm->session->Execute();
  ASSERT_TRUE(cold_table.ok()) << cold_table.status();
  ASSERT_TRUE(warm_table.ok()) << warm_table.status();
  ASSERT_EQ((*cold_table)->rows().size(), (*warm_table)->rows().size());
  // Bit-identical result tables.
  for (size_t r = 0; r < (*cold_table)->rows().size(); ++r) {
    EXPECT_EQ((*cold_table)->rows()[r], (*warm_table)->rows()[r]);
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, SessionOpenRejectsStoreOnlyImages) {
  const std::string path = TempPath("storeonly.snap");
  Fixture fx;
  ASSERT_TRUE(
      storage::SaveSnapshot(path, *fx.store, nullptr, nullptr).ok());
  auto opened = core::Session::OpenSnapshot(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsInvalidArgument()) << opened.status();
  // But the engine-level and storage-level entry points accept it.
  EXPECT_TRUE(engine::QueryEngine::OpenSnapshot(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace re2xolap
