#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace re2xolap::util {
namespace {

TEST(ThreadPoolTest, SizeZeroAndOneDegradeToSerialInline) {
  for (size_t n_threads : {0u, 1u}) {
    ThreadPool pool(n_threads);
    EXPECT_EQ(pool.size(), 0u);  // no workers spawned
    std::vector<int> hits(100, 0);
    std::thread::id caller = std::this_thread::get_id();
    bool all_inline = true;
    pool.ParallelFor(hits.size(), [&](size_t i) {
      hits[i] = 1;
      if (std::this_thread::get_id() != caller) all_inline = false;
    });
    EXPECT_TRUE(all_inline);
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, PoolIsReusableAcrossLoops) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(round + 1, [&](size_t i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    size_t n = static_cast<size_t>(round) + 1;
    EXPECT_EQ(sum.load(), n * (n + 1) / 2);
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  for (size_t n_threads : {1u, 4u}) {
    ThreadPool pool(n_threads);
    EXPECT_THROW(
        pool.ParallelFor(100,
                         [&](size_t i) {
                           if (i == 42) throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool survives a throwing loop and keeps working.
    std::atomic<int> count{0};
    pool.ParallelFor(10, [&](size_t) { ++count; });
    EXPECT_EQ(count.load(), 10);
  }
}

TEST(ThreadPoolTest, ExceptionSkipsUnclaimedIterations) {
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  constexpr size_t kN = 100000;
  EXPECT_THROW(pool.ParallelFor(kN,
                                [&](size_t i) {
                                  ++executed;
                                  if (i == 0) throw std::runtime_error("x");
                                }),
               std::runtime_error);
  // Index 0 is claimed first, so the bulk of the range must be skipped
  // (already-claimed in-flight iterations may still complete).
  EXPECT_LT(executed.load(), static_cast<int>(kN));
}

TEST(ThreadPoolTest, CancellationStopsEarlySerial) {
  ThreadPool pool(0);
  CancellationToken token;
  int executed = 0;
  pool.ParallelFor(
      100,
      [&](size_t i) {
        ++executed;
        if (i == 3) token.Cancel();
      },
      &token);
  // Serial inline execution checks the token before each iteration.
  EXPECT_EQ(executed, 4);
  token.Reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(ThreadPoolTest, CancellationStopsEarlyParallel) {
  ThreadPool pool(4);
  CancellationToken token;
  token.Cancel();  // pre-cancelled: nothing may run
  std::atomic<int> executed{0};
  pool.ParallelFor(1000, [&](size_t) { ++executed; }, &token);
  EXPECT_EQ(executed.load(), 0);

  CancellationToken token2;
  std::atomic<int> executed2{0};
  pool.ParallelFor(
      100000,
      [&](size_t) {
        if (executed2.fetch_add(1, std::memory_order_relaxed) == 10) {
          token2.Cancel();
        }
      },
      &token2);
  EXPECT_LT(executed2.load(), 100000);
}

TEST(ThreadPoolTest, DefaultThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
}

}  // namespace
}  // namespace re2xolap::util
