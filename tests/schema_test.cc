// Tests for schema tooling: incremental virtual-graph updates, QB4OLAP
// annotation export/import, and analytical-view materialization.

#include <gtest/gtest.h>

#include "core/analytical_view.h"
#include "core/qb4olap.h"
#include "core/reolap.h"
#include "core/virtual_schema_graph.h"
#include "qb/datasets.h"
#include "qb/generator.h"
#include "sparql/executor.h"
#include "tests/test_data.h"

namespace re2xolap::core {
namespace {

using re2xolap::testing::BuildFigure1Store;
using re2xolap::testing::kObsClass;

// --- Incremental VSG update ------------------------------------------------------

class VsgUpdateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store = BuildFigure1Store();
    auto r = VirtualSchemaGraph::Build(*store, kObsClass);
    ASSERT_TRUE(r.ok());
    vsg = std::make_unique<VirtualSchemaGraph>(std::move(r).value());
  }

  // Appends a new observation with a brand-new origin country "Mali"
  // (continent Africa) and refreezes.
  void AppendMaliObservation() {
    using rdf::Term;
    auto iri = [](const std::string& l) {
      return Term::Iri("http://test/" + l);
    };
    store->Add(iri("origin/mali"), Term::Iri(re2xolap::testing::kLabelIri),
               Term::StringLiteral("Mali"));
    store->Add(iri("origin/mali"), iri("inContinent"),
               iri("continent/africa"));
    Term obs = iri("obs/99");
    store->Add(obs, Term::Iri(re2xolap::testing::kTypeIri), iri("Observation"));
    store->Add(obs, iri("countryOrigin"), iri("origin/mali"));
    store->Add(obs, iri("countryDestination"), iri("dest/germany"));
    store->Add(obs, iri("refPeriod"), iri("month/2015-01"));
    store->Add(obs, iri("age"), iri("age/18-34"));
    store->Add(obs, iri("numApplicants"), Term::IntegerLiteral(42));
    store->Freeze();
  }

  std::unique_ptr<rdf::TripleStore> store;
  std::unique_ptr<VirtualSchemaGraph> vsg;
};

TEST_F(VsgUpdateTest, NewMemberMergedIntoExistingLevel) {
  size_t members_before = vsg->total_members();
  size_t levels_before = vsg->level_count();
  AppendMaliObservation();
  ASSERT_TRUE(vsg->Update(*store, kObsClass).ok());
  EXPECT_EQ(vsg->total_members(), members_before + 1);
  EXPECT_EQ(vsg->level_count(), levels_before);  // no new levels
  rdf::TermId mali = store->Lookup(rdf::Term::Iri("http://test/origin/mali"));
  ASSERT_NE(mali, rdf::kInvalidTermId);
  EXPECT_EQ(vsg->NodesOfMember(mali).size(), 1u);
}

TEST_F(VsgUpdateTest, UpdateMatchesFullRebuild) {
  AppendMaliObservation();
  ASSERT_TRUE(vsg->Update(*store, kObsClass).ok());
  auto rebuilt = VirtualSchemaGraph::Build(*store, kObsClass);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(vsg->total_members(), rebuilt->total_members());
  EXPECT_EQ(vsg->level_count(), rebuilt->level_count());
  EXPECT_EQ(vsg->level_paths().size(), rebuilt->level_paths().size());
  EXPECT_EQ(vsg->dimension_count(), rebuilt->dimension_count());
}

TEST_F(VsgUpdateTest, UpdatedGraphServesSynthesis) {
  AppendMaliObservation();
  ASSERT_TRUE(vsg->Update(*store, kObsClass).ok());
  rdf::TextIndex text(*store);
  Reolap reolap(store.get(), vsg.get(), &text);
  auto queries = reolap.Synthesize({"Mali"});
  ASSERT_TRUE(queries.ok());
  ASSERT_EQ(queries->size(), 1u);
  auto table = sparql::Execute(*store, (*queries)[0].query);
  ASSERT_TRUE(table.ok());
  EXPECT_GT(table->row_count(), 0u);
}

TEST_F(VsgUpdateTest, SchemaChangeNewDimensionRejected) {
  using rdf::Term;
  Term obs = Term::Iri("http://test/obs/100");
  store->Add(obs, Term::Iri(re2xolap::testing::kTypeIri),
             Term::Iri(kObsClass));
  store->Add(obs, Term::Iri("http://test/brandNewDim"),
             Term::Iri("http://test/whatever/1"));
  store->Add(obs, Term::Iri("http://test/numApplicants"),
             Term::IntegerLiteral(1));
  store->Freeze();
  util::Status st = vsg->Update(*store, kObsClass);
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("brandNewDim"), std::string::npos);
}

TEST_F(VsgUpdateTest, SchemaChangeNewHierarchyStepRejected) {
  using rdf::Term;
  // New member whose hierarchy uses an unknown predicate.
  auto iri = [](const std::string& l) { return Term::Iri("http://test/" + l); };
  store->Add(iri("origin/peru"), iri("inTradeBloc"), iri("bloc/andes"));
  Term obs = iri("obs/101");
  store->Add(obs, Term::Iri(re2xolap::testing::kTypeIri), iri("Observation"));
  store->Add(obs, iri("countryOrigin"), iri("origin/peru"));
  store->Add(obs, iri("numApplicants"), Term::IntegerLiteral(5));
  store->Freeze();
  util::Status st = vsg->Update(*store, kObsClass);
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST_F(VsgUpdateTest, NoOpUpdateKeepsEverything) {
  size_t members = vsg->total_members();
  ASSERT_TRUE(vsg->Update(*store, kObsClass).ok());
  EXPECT_EQ(vsg->total_members(), members);
}

// --- QB4OLAP annotations ----------------------------------------------------------

class Qb4olapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store = BuildFigure1Store();
    auto r = VirtualSchemaGraph::Build(*store, kObsClass);
    ASSERT_TRUE(r.ok());
    vsg = std::make_unique<VirtualSchemaGraph>(std::move(r).value());
  }
  std::unique_ptr<rdf::TripleStore> store;
  std::unique_ptr<VirtualSchemaGraph> vsg;
  const std::string ds_iri = "http://test/dataset";
};

TEST_F(Qb4olapTest, ExportImportRoundTrip) {
  ASSERT_TRUE(ExportQb4OlapAnnotations(*store, *vsg, ds_iri, kObsClass,
                                       store.get())
                  .ok());
  store->Freeze();
  auto imported = BuildFromQb4Olap(*store, ds_iri);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  EXPECT_EQ(imported->dimension_count(), vsg->dimension_count());
  EXPECT_EQ(imported->level_count(), vsg->level_count());
  EXPECT_EQ(imported->total_members(), vsg->total_members());
  EXPECT_EQ(imported->hierarchy_count(), vsg->hierarchy_count());
  EXPECT_EQ(imported->level_paths().size(), vsg->level_paths().size());
  EXPECT_EQ(imported->measure_predicates(), vsg->measure_predicates());
}

TEST_F(Qb4olapTest, AnnotatedObservationClassRecovered) {
  ASSERT_TRUE(ExportQb4OlapAnnotations(*store, *vsg, ds_iri, kObsClass,
                                       store.get())
                  .ok());
  store->Freeze();
  auto cls = AnnotatedObservationClass(*store, ds_iri);
  ASSERT_TRUE(cls.ok());
  EXPECT_EQ(*cls, kObsClass);
}

TEST_F(Qb4olapTest, ImportedGraphServesSynthesis) {
  ASSERT_TRUE(ExportQb4OlapAnnotations(*store, *vsg, ds_iri, kObsClass,
                                       store.get())
                  .ok());
  store->Freeze();
  auto imported = BuildFromQb4Olap(*store, ds_iri);
  ASSERT_TRUE(imported.ok());
  rdf::TextIndex text(*store);
  Reolap reolap(store.get(), &*imported, &text);
  auto queries = reolap.Synthesize({"Germany", "2014"});
  ASSERT_TRUE(queries.ok());
  ASSERT_EQ(queries->size(), 1u);
  auto table = sparql::Execute(*store, (*queries)[0].query);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->row_count(), 3u);
}

TEST_F(Qb4olapTest, MissingAnnotationsIsNotFound) {
  EXPECT_TRUE(BuildFromQb4Olap(*store, "http://test/nope").status()
                  .IsNotFound());
  EXPECT_TRUE(
      AnnotatedObservationClass(*store, "http://test/nope").status()
          .IsNotFound());
}

TEST_F(Qb4olapTest, FromPartsValidatesInput) {
  // Root must be first.
  VsgNode not_root;
  not_root.id = 0;
  EXPECT_FALSE(
      VirtualSchemaGraph::FromParts({not_root}, {}, {}, {}).ok());
  // Dense ids required.
  VsgNode root;
  root.id = 0;
  root.is_root = true;
  VsgNode stray;
  stray.id = 5;
  EXPECT_FALSE(
      VirtualSchemaGraph::FromParts({root, stray}, {}, {}, {}).ok());
  // Edge endpoint validation.
  VsgNode l1;
  l1.id = 1;
  EXPECT_FALSE(VirtualSchemaGraph::FromParts(
                   {root, l1}, {VsgEdge{0, 7, 3}}, {}, {})
                   .ok());
}

// --- Analytical view --------------------------------------------------------------

class ViewTest : public ::testing::Test {
 protected:
  // A non-cube "movie KG": reviews are facts; the reviewer's country and
  // the movie's genre are only reachable through intermediate nodes.
  void SetUp() override {
    using rdf::Term;
    auto iri = [](const std::string& l) {
      return Term::Iri("http://kg/" + l);
    };
    Term type = Term::Iri(re2xolap::testing::kTypeIri);
    Term label = Term::Iri(re2xolap::testing::kLabelIri);
    auto labeled = [&](const std::string& l, const std::string& text) {
      Term t = iri(l);
      source.Add(t, label, Term::StringLiteral(text));
      return t;
    };
    Term france = labeled("country/fr", "France");
    Term japan = labeled("country/jp", "Japan");
    Term drama = labeled("genre/drama", "Drama");
    Term comedy = labeled("genre/comedy", "Comedy");
    Term alice = labeled("person/alice", "Alice");
    Term bob = labeled("person/bob", "Bob");
    source.Add(alice, iri("livesIn"), france);
    source.Add(bob, iri("livesIn"), japan);
    Term m1 = labeled("movie/m1", "The Long Silence");
    Term m2 = labeled("movie/m2", "Laughing Matters");
    source.Add(m1, iri("hasGenre"), drama);
    source.Add(m2, iri("hasGenre"), comedy);
    struct Review {
      const char* id;
      Term reviewer, movie;
      int64_t stars;
    };
    Review reviews[] = {
        {"r1", alice, m1, 5}, {"r2", alice, m2, 3},
        {"r3", bob, m1, 4},   {"r4", bob, m2, 2},
    };
    for (const Review& r : reviews) {
      Term rev = iri(std::string("review/") + r.id);
      source.Add(rev, type, iri("Review"));
      source.Add(rev, iri("byReviewer"), r.reviewer);
      source.Add(rev, iri("ofMovie"), r.movie);
      source.Add(rev, iri("stars"), Term::IntegerLiteral(r.stars));
    }
    // A review missing its star rating: must be skipped.
    Term incomplete = iri("review/r5");
    source.Add(incomplete, type, iri("Review"));
    source.Add(incomplete, iri("byReviewer"), alice);
    source.Add(incomplete, iri("ofMovie"), m1);
    source.Freeze();

    def.fact_class = "http://kg/Review";
    def.view_iri_base = "http://view/";
    def.dimensions = {
        {"reviewerCountry", {"http://kg/byReviewer", "http://kg/livesIn"}},
        {"movieGenre", {"http://kg/ofMovie", "http://kg/hasGenre"}},
    };
    def.measures = {{"stars", {"http://kg/stars"}}};
  }
  rdf::TripleStore source;
  ViewDefinition def;
};

TEST_F(ViewTest, FlattensPathsIntoDimensions) {
  uint64_t skipped = 0;
  auto view = MaterializeView(source, def, &skipped);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(skipped, 1u);  // the rating-less review
  rdf::TermId type =
      (*view)->Lookup(rdf::Term::Iri(re2xolap::testing::kTypeIri));
  rdf::TermId cls =
      (*view)->Lookup(rdf::Term::Iri(def.ObservationClassIri()));
  EXPECT_EQ((*view)->CountMatches({rdf::kInvalidTermId, type, cls}), 4u);
  // Direct (single-hop) dimension edge in the view.
  rdf::TermId pred =
      (*view)->Lookup(rdf::Term::Iri("http://view/reviewerCountry"));
  rdf::TermId france = (*view)->Lookup(rdf::Term::Iri("http://kg/country/fr"));
  ASSERT_NE(pred, rdf::kInvalidTermId);
  EXPECT_EQ((*view)->CountMatches({rdf::kInvalidTermId, pred, france}), 2u);
}

TEST_F(ViewTest, ViewBootstrapsAndSynthesizes) {
  auto view = MaterializeView(source, def);
  ASSERT_TRUE(view.ok());
  auto vsg =
      VirtualSchemaGraph::Build(**view, def.ObservationClassIri());
  ASSERT_TRUE(vsg.ok()) << vsg.status().ToString();
  EXPECT_EQ(vsg->dimension_count(), 2u);
  EXPECT_EQ(vsg->measure_count(), 1u);
  rdf::TextIndex text(**view);
  Reolap reolap(view->get(), &*vsg, &text);
  auto queries = reolap.Synthesize({"France", "Drama"});
  ASSERT_TRUE(queries.ok());
  ASSERT_EQ(queries->size(), 1u);
  auto table = sparql::Execute(**view, (*queries)[0].query);
  ASSERT_TRUE(table.ok());
  // (France, Drama), (France, Comedy), (Japan, Drama), (Japan, Comedy).
  EXPECT_EQ(table->row_count(), 4u);
}

TEST_F(ViewTest, RejectsBadDefinitions) {
  ViewDefinition bad = def;
  bad.fact_class = "http://kg/NoSuchClass";
  EXPECT_TRUE(MaterializeView(source, bad).status().IsNotFound());

  bad = def;
  bad.dimensions[0].path = {"http://kg/noSuchPredicate"};
  EXPECT_TRUE(MaterializeView(source, bad).status().IsNotFound());

  bad = def;
  bad.measures.clear();
  EXPECT_TRUE(MaterializeView(source, bad).status().IsInvalidArgument());

  bad = def;
  bad.dimensions[0].path.clear();
  EXPECT_FALSE(MaterializeView(source, bad).ok());
}

TEST_F(ViewTest, CopiesMemberAttributes) {
  auto view = MaterializeView(source, def);
  ASSERT_TRUE(view.ok());
  // Labels of reached members must exist in the view (needed by ReOLAP).
  EXPECT_NE((*view)->Lookup(rdf::Term::StringLiteral("France")),
            rdf::kInvalidTermId);
  EXPECT_NE((*view)->Lookup(rdf::Term::StringLiteral("Drama")),
            rdf::kInvalidTermId);
}

}  // namespace
}  // namespace re2xolap::core

namespace re2xolap::core {
namespace {

TEST(VsgDeltaUpdateTest, DeltaHintEquivalentToFullRescan) {
  using rdf::Term;
  auto store = re2xolap::testing::BuildFigure1Store();
  auto built = VirtualSchemaGraph::Build(
      *store, re2xolap::testing::kObsClass);
  ASSERT_TRUE(built.ok());
  VirtualSchemaGraph with_hint = *built;
  VirtualSchemaGraph without_hint = *built;

  auto iri = [](const std::string& l) { return Term::Iri("http://test/" + l); };
  store->Add(iri("origin/chad"), Term::Iri(re2xolap::testing::kLabelIri),
             Term::StringLiteral("Chad"));
  store->Add(iri("origin/chad"), iri("inContinent"), iri("continent/africa"));
  Term obs = iri("obs/delta");
  store->Add(obs, Term::Iri(re2xolap::testing::kTypeIri), iri("Observation"));
  store->Add(obs, iri("countryOrigin"), iri("origin/chad"));
  store->Add(obs, iri("numApplicants"), Term::IntegerLiteral(3));
  store->Freeze();

  std::vector<rdf::TermId> delta = {store->Lookup(iri("obs/delta"))};
  ASSERT_TRUE(with_hint
                  .Update(*store, re2xolap::testing::kObsClass, &delta)
                  .ok());
  ASSERT_TRUE(
      without_hint.Update(*store, re2xolap::testing::kObsClass).ok());
  EXPECT_EQ(with_hint.total_members(), without_hint.total_members());
  EXPECT_EQ(with_hint.total_members(), built->total_members() + 1);
}

}  // namespace
}  // namespace re2xolap::core
