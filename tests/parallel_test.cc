// Determinism of the parallel execution subsystem: every thread count must
// produce byte-identical results to the serial path — candidates (order,
// descriptions, SPARQL text), ReolapStats counters, frozen-store indexes,
// and refinement evaluations.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/exref.h"
#include "core/reolap.h"
#include "qb/datasets.h"
#include "qb/generator.h"
#include "rdf/text_index.h"
#include "sparql/ast.h"
#include "sparql/executor.h"
#include "tests/test_data.h"
#include "util/thread_pool.h"

namespace re2xolap::core {
namespace {

using re2xolap::testing::BuildFigure1Store;
using re2xolap::testing::kObsClass;

std::string Signature(const std::vector<CandidateQuery>& candidates) {
  std::string sig;
  for (const CandidateQuery& c : candidates) {
    sig += c.description + "\n";
    sig += sparql::ToSparql(c.query) + "\n";
    for (const std::string& g : c.group_columns) sig += g + ",";
    for (const std::string& m : c.measure_columns) sig += m + ",";
    for (const Interpretation& in : c.interpretations) {
      sig += std::to_string(in.member) + ";";
    }
    for (const auto& row : c.extra_rows) {
      for (const Interpretation& in : row) {
        sig += std::to_string(in.member) + "|";
      }
    }
    sig += "\n";
  }
  return sig;
}

/// A bootstrapped environment over any frozen store.
struct Env {
  std::unique_ptr<rdf::TripleStore> store;
  std::unique_ptr<VirtualSchemaGraph> vsg;
  std::unique_ptr<rdf::TextIndex> text;
  std::unique_ptr<Reolap> reolap;
};

Env MakeEnv(std::unique_ptr<rdf::TripleStore> store,
            const std::string& obs_class) {
  Env env;
  env.store = std::move(store);
  auto r = VirtualSchemaGraph::Build(*env.store, obs_class);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  env.vsg = std::make_unique<VirtualSchemaGraph>(std::move(r).value());
  env.text = std::make_unique<rdf::TextIndex>(*env.store);
  env.reolap =
      std::make_unique<Reolap>(env.store.get(), env.vsg.get(),
                               env.text.get());
  return env;
}

Env MakeEurostatEnv() {
  auto ds = qb::Generate(qb::EurostatSpec(3000));
  EXPECT_TRUE(ds.ok()) << ds.status().ToString();
  return MakeEnv(std::move(ds->store), ds->spec.observation_class);
}

TEST(ParallelSynthesisTest, EightThreadsMatchSerialOnFigure1) {
  Env env = MakeEnv(BuildFigure1Store(), kObsClass);
  for (std::vector<std::string> tuple :
       {std::vector<std::string>{"Germany", "2014"},
        std::vector<std::string>{"Syria"},
        std::vector<std::string>{"Asia", "Germany", "18-34"}}) {
    ReolapOptions serial;
    serial.num_threads = 1;
    ReolapStats serial_stats;
    auto expected = env.reolap->Synthesize(tuple, serial, &serial_stats);
    ASSERT_TRUE(expected.ok());

    ReolapOptions parallel;
    parallel.num_threads = 8;
    ReolapStats parallel_stats;
    auto actual = env.reolap->Synthesize(tuple, parallel, &parallel_stats);
    ASSERT_TRUE(actual.ok());

    EXPECT_EQ(Signature(*expected), Signature(*actual));
    EXPECT_EQ(serial_stats.combinations_checked,
              parallel_stats.combinations_checked);
    EXPECT_EQ(serial_stats.validated_ok, parallel_stats.validated_ok);
    EXPECT_EQ(serial_stats.interpretations_considered,
              parallel_stats.interpretations_considered);
  }
}

TEST(ParallelSynthesisTest, ThreadSweepIsDeterministicOnEurostat) {
  Env env = MakeEurostatEnv();
  // Real labels from the generated Eurostat cube (year + country levels).
  const std::vector<std::string> tuple = {"Germany", "2014"};
  ReolapOptions serial;
  serial.num_threads = 1;
  ReolapStats serial_stats;
  auto expected = env.reolap->Synthesize(tuple, serial, &serial_stats);
  ASSERT_TRUE(expected.ok());
  EXPECT_FALSE(expected->empty());

  for (size_t threads : {2u, 4u, 8u}) {
    ReolapOptions options;
    options.num_threads = threads;
    ReolapStats stats;
    auto actual = env.reolap->Synthesize(tuple, options, &stats);
    ASSERT_TRUE(actual.ok());
    EXPECT_EQ(Signature(*expected), Signature(*actual)) << threads;
    EXPECT_EQ(serial_stats.combinations_checked, stats.combinations_checked);
    EXPECT_EQ(serial_stats.validated_ok, stats.validated_ok);
  }
}

TEST(ParallelSynthesisTest, ExternalPoolIsReusedAcrossCalls) {
  Env env = MakeEnv(BuildFigure1Store(), kObsClass);
  util::ThreadPool pool(4);
  ReolapOptions options;
  options.num_threads = 4;
  options.pool = &pool;
  ReolapOptions serial;
  serial.num_threads = 1;
  for (int round = 0; round < 3; ++round) {
    auto expected = env.reolap->Synthesize({"Germany", "2014"}, serial);
    auto actual = env.reolap->Synthesize({"Germany", "2014"}, options);
    ASSERT_TRUE(expected.ok() && actual.ok());
    EXPECT_EQ(Signature(*expected), Signature(*actual));
  }
}

TEST(ParallelSynthesisTest, SynthesizeMultiMatchesSerial) {
  Env env = MakeEnv(BuildFigure1Store(), kObsClass);
  const std::vector<std::vector<std::string>> tuples = {
      {"Germany", "2014"}, {"France", "2014"}};
  ReolapOptions serial;
  serial.num_threads = 1;
  auto expected = env.reolap->SynthesizeMulti(tuples, serial);
  ASSERT_TRUE(expected.ok());
  ReolapOptions parallel;
  parallel.num_threads = 8;
  auto actual = env.reolap->SynthesizeMulti(tuples, parallel);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(Signature(*expected), Signature(*actual));
}

TEST(ParallelFreezeTest, ParallelFreezeProducesIdenticalStore) {
  auto build = [](util::ThreadPool* pool) {
    auto ds = qb::Generate(qb::EurostatSpec(2000), pool);
    EXPECT_TRUE(ds.ok());
    return std::move(ds->store);
  };
  util::ThreadPool pool(4);
  auto serial = build(nullptr);
  auto parallel = build(&pool);

  ASSERT_EQ(serial->size(), parallel->size());
  // Full scans through each permutation must agree bit for bit.
  auto all_serial = serial->Match({});
  auto all_parallel = parallel->Match({});
  ASSERT_EQ(all_serial.size(), all_parallel.size());
  for (size_t i = 0; i < all_serial.size(); ++i) {
    EXPECT_TRUE(all_serial[i] == all_parallel[i]) << i;
  }
  for (rdf::TermId p : serial->AllPredicates()) {
    rdf::PredicateStats a = serial->predicate_stats(p);
    rdf::PredicateStats b = parallel->predicate_stats(p);
    EXPECT_EQ(a.triple_count, b.triple_count);
    EXPECT_EQ(a.distinct_subjects, b.distinct_subjects);
    EXPECT_EQ(a.distinct_objects, b.distinct_objects);
    // POS / OSP permutations answer predicate- and object-bound patterns.
    EXPECT_EQ(serial->CountMatches({rdf::kInvalidTermId, p,
                                    rdf::kInvalidTermId}),
              parallel->CountMatches({rdf::kInvalidTermId, p,
                                      rdf::kInvalidTermId}));
  }
}

TEST(ParallelExrefTest, DisaggregateAndEvaluateMatchSerial) {
  Env env = MakeEnv(BuildFigure1Store(), kObsClass);
  auto queries = env.reolap->Synthesize({"Germany", "2014"});
  ASSERT_TRUE(queries.ok());
  ASSERT_FALSE(queries->empty());
  ExploreState state = InitialState((*queries)[0]);

  util::ThreadPool pool(4);
  std::vector<ExploreState> serial_states =
      Disaggregate(*env.vsg, *env.store, state);
  std::vector<ExploreState> parallel_states =
      Disaggregate(*env.vsg, *env.store, state, &pool);
  ASSERT_EQ(serial_states.size(), parallel_states.size());
  for (size_t i = 0; i < serial_states.size(); ++i) {
    EXPECT_EQ(sparql::ToSparql(serial_states[i].query),
              sparql::ToSparql(parallel_states[i].query));
    EXPECT_EQ(serial_states[i].description, parallel_states[i].description);
  }

  std::vector<sparql::ExecStats> serial_stats, parallel_stats;
  auto serial_tables = EvaluateStates(*env.store, serial_states, {}, nullptr,
                                      &serial_stats);
  auto parallel_tables = EvaluateStates(*env.store, parallel_states, {},
                                        &pool, &parallel_stats);
  ASSERT_EQ(serial_tables.size(), parallel_tables.size());
  ASSERT_EQ(parallel_stats.size(), parallel_tables.size());
  for (size_t i = 0; i < serial_tables.size(); ++i) {
    ASSERT_TRUE(serial_tables[i].ok());
    ASSERT_TRUE(parallel_tables[i].ok());
    EXPECT_EQ(serial_tables[i]->row_count(), parallel_tables[i]->row_count());
    EXPECT_EQ(serial_tables[i]->columns(), parallel_tables[i]->columns());
    EXPECT_EQ(serial_stats[i].intermediate_bindings,
              parallel_stats[i].intermediate_bindings);
  }
}

}  // namespace
}  // namespace re2xolap::core
