#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "rdf/dictionary.h"
#include "rdf/ntriples.h"
#include "rdf/term.h"
#include "rdf/text_index.h"
#include "rdf/triple_store.h"

namespace re2xolap::rdf {
namespace {

// --- Term ---------------------------------------------------------------------

TEST(TermTest, Factories) {
  EXPECT_TRUE(Term::Iri("http://x/a").is_iri());
  EXPECT_TRUE(Term::StringLiteral("hi").is_literal());
  EXPECT_TRUE(Term::Blank("b0").is_blank());
  EXPECT_TRUE(Term::IntegerLiteral(4).is_numeric_literal());
  EXPECT_TRUE(Term::DoubleLiteral(1.5).is_numeric_literal());
  EXPECT_FALSE(Term::StringLiteral("4").is_numeric_literal());
}

TEST(TermTest, AsDouble) {
  EXPECT_DOUBLE_EQ(Term::IntegerLiteral(42).AsDouble(), 42.0);
  EXPECT_DOUBLE_EQ(Term::DoubleLiteral(2.25).AsDouble(), 2.25);
  EXPECT_DOUBLE_EQ(Term::StringLiteral("42").AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(Term::Iri("http://x").AsDouble(), 0.0);
}

TEST(TermTest, EqualityDistinguishesKindAndType) {
  EXPECT_EQ(Term::Iri("a"), Term::Iri("a"));
  EXPECT_FALSE(Term::Iri("a") == Term::StringLiteral("a"));
  EXPECT_FALSE(Term::StringLiteral("4") == Term::IntegerLiteral(4));
}

TEST(TermTest, ToStringForms) {
  EXPECT_EQ(Term::Iri("http://x/a").ToString(), "<http://x/a>");
  EXPECT_EQ(Term::StringLiteral("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Term::IntegerLiteral(3).ToString(), "\"3\"^^xsd:integer");
  EXPECT_EQ(Term::Blank("b").ToString(), "_:b");
}

// --- Dictionary ------------------------------------------------------------------

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary d;
  TermId a = d.Intern(Term::Iri("http://x/a"));
  TermId b = d.Intern(Term::Iri("http://x/b"));
  EXPECT_NE(a, b);
  EXPECT_EQ(d.Intern(Term::Iri("http://x/a")), a);
  EXPECT_EQ(d.size(), 2u);
}

TEST(DictionaryTest, LookupMissingReturnsInvalid) {
  Dictionary d;
  EXPECT_EQ(d.Lookup(Term::Iri("http://none")), kInvalidTermId);
}

TEST(DictionaryTest, RoundTrip) {
  Dictionary d;
  Term t = Term::StringLiteral("Germany");
  TermId id = d.Intern(t);
  EXPECT_TRUE(d.IsValid(id));
  EXPECT_EQ(d.term(id), t);
}

TEST(DictionaryTest, ForEachVisitsAllInIdOrder) {
  Dictionary d;
  d.Intern(Term::Iri("a"));
  d.Intern(Term::Iri("b"));
  std::vector<TermId> ids;
  d.ForEach([&](TermId id, const Term&) { ids.push_back(id); });
  EXPECT_EQ(ids, (std::vector<TermId>{1, 2}));
}

// --- TripleStore -------------------------------------------------------------------

class TripleStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // s1 -p1-> o1 ; s1 -p1-> o2 ; s1 -p2-> o1 ; s2 -p1-> o1
    s1 = store.Intern(Term::Iri("s1"));
    s2 = store.Intern(Term::Iri("s2"));
    p1 = store.Intern(Term::Iri("p1"));
    p2 = store.Intern(Term::Iri("p2"));
    o1 = store.Intern(Term::Iri("o1"));
    o2 = store.Intern(Term::Iri("o2"));
    store.AddEncoded({s1, p1, o1});
    store.AddEncoded({s1, p1, o2});
    store.AddEncoded({s1, p2, o1});
    store.AddEncoded({s2, p1, o1});
    store.Freeze();
  }
  TripleStore store;
  TermId s1, s2, p1, p2, o1, o2;
};

TEST_F(TripleStoreTest, MatchAllPatternShapes) {
  EXPECT_EQ(store.Match({}).size(), 4u);                       // ???
  EXPECT_EQ(store.Match({s1, 0, 0}).size(), 3u);               // s??
  EXPECT_EQ(store.Match({0, p1, 0}).size(), 3u);               // ?p?
  EXPECT_EQ(store.Match({0, 0, o1}).size(), 3u);               // ??o
  EXPECT_EQ(store.Match({s1, p1, 0}).size(), 2u);              // sp?
  EXPECT_EQ(store.Match({s1, 0, o1}).size(), 2u);              // s?o
  EXPECT_EQ(store.Match({0, p1, o1}).size(), 2u);              // ?po
  EXPECT_EQ(store.Match({s1, p1, o1}).size(), 1u);             // spo
  EXPECT_EQ(store.Match({s2, p2, 0}).size(), 0u);              // no match
}

TEST_F(TripleStoreTest, MatchedTriplesActuallyMatch) {
  for (const EncodedTriple& t : store.Match({s1, 0, 0})) {
    EXPECT_EQ(t.s, s1);
  }
  for (const EncodedTriple& t : store.Match({0, p1, o1})) {
    EXPECT_EQ(t.p, p1);
    EXPECT_EQ(t.o, o1);
  }
}

TEST_F(TripleStoreTest, DuplicatesRemovedOnFreeze) {
  TripleStore s;
  TermId a = s.Intern(Term::Iri("a"));
  TermId b = s.Intern(Term::Iri("b"));
  s.AddEncoded({a, b, a});
  s.AddEncoded({a, b, a});
  s.Freeze();
  EXPECT_EQ(s.size(), 1u);
}

TEST_F(TripleStoreTest, PredicateStats) {
  PredicateStats st = store.predicate_stats(p1);
  EXPECT_EQ(st.triple_count, 3u);
  EXPECT_EQ(st.distinct_subjects, 2u);  // s1, s2
  EXPECT_EQ(st.distinct_objects, 2u);   // o1, o2
  EXPECT_EQ(store.predicate_stats(o1).triple_count, 0u);
}

TEST_F(TripleStoreTest, PredicatesOfSubjectAndObject) {
  EXPECT_EQ(store.PredicatesOfSubject(s1), (std::vector<TermId>{p1, p2}));
  EXPECT_EQ(store.PredicatesOfSubject(s2), (std::vector<TermId>{p1}));
  EXPECT_EQ(store.PredicatesOfObject(o1), (std::vector<TermId>{p1, p2}));
  EXPECT_EQ(store.PredicatesOfObject(o2), (std::vector<TermId>{p1}));
}

TEST_F(TripleStoreTest, AllPredicates) {
  EXPECT_EQ(store.AllPredicates(), (std::vector<TermId>{p1, p2}));
}

TEST_F(TripleStoreTest, RefreezeAfterAdd) {
  TripleStore s;
  s.Add(Term::Iri("x"), Term::Iri("p"), Term::Iri("y"));
  s.Freeze();
  EXPECT_EQ(s.size(), 1u);
  s.Add(Term::Iri("x"), Term::Iri("p"), Term::Iri("z"));
  EXPECT_FALSE(s.frozen());
  s.Freeze();
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.Match({s.Lookup(Term::Iri("x")), 0, 0}).size(), 2u);
}

TEST_F(TripleStoreTest, MemoryUsagePositive) {
  EXPECT_GT(store.MemoryUsage(), 0u);
}

// --- TextIndex ------------------------------------------------------------------------

class TextIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto add = [&](const std::string& subj, const std::string& text) {
      store.Add(Term::Iri(subj), Term::Iri("label"),
                Term::StringLiteral(text));
    };
    add("m/1", "Germany");
    add("m/2", "October 2014");
    add("m/3", "November 2014");
    add("m/4", "germany");  // different literal, same lowercase
    add("m/5", "East Germany");
    store.Add(Term::Iri("m/6"), Term::Iri("count"), Term::IntegerLiteral(7));
    store.Freeze();
    index = std::make_unique<TextIndex>(store);
  }
  TripleStore store;
  std::unique_ptr<TextIndex> index;
};

TEST_F(TextIndexTest, ExactMatchIsCaseInsensitive) {
  EXPECT_EQ(index->ExactMatch("Germany").size(), 2u);  // "Germany", "germany"
  EXPECT_EQ(index->ExactMatch("GERMANY").size(), 2u);
  EXPECT_TRUE(index->ExactMatch("France").empty());
}

TEST_F(TextIndexTest, KeywordMatchRequiresAllTokens) {
  EXPECT_EQ(index->KeywordMatch("2014").size(), 2u);
  EXPECT_EQ(index->KeywordMatch("october 2014").size(), 1u);
  EXPECT_TRUE(index->KeywordMatch("october 2015").empty());
  EXPECT_EQ(index->KeywordMatch("germany").size(), 3u);  // incl. East Germany
}

TEST_F(TextIndexTest, MatchPrefersExact) {
  // "Germany" has exact matches, so "East Germany" is not returned.
  EXPECT_EQ(index->Match("Germany").size(), 2u);
  // No exact match for "East": falls back to keyword search.
  EXPECT_EQ(index->Match("East").size(), 1u);
}

TEST_F(TextIndexTest, LimitCapsResults) {
  EXPECT_EQ(index->KeywordMatch("germany", 2).size(), 2u);
  EXPECT_EQ(index->Match("Germany", 1).size(), 1u);
}

TEST_F(TextIndexTest, OnlyStringLiteralsIndexed) {
  EXPECT_EQ(index->indexed_literal_count(), 5u);
  EXPECT_TRUE(index->Match("7").empty());
}

TEST_F(TextIndexTest, EmptyQueryMatchesNothing) {
  EXPECT_TRUE(index->KeywordMatch("").empty());
  EXPECT_TRUE(index->KeywordMatch("...").empty());
}

// --- N-Triples I/O -----------------------------------------------------------------------

TEST(NTriplesTest, RoundTrip) {
  TripleStore store;
  store.Add(Term::Iri("http://x/s"), Term::Iri("http://x/p"),
            Term::Iri("http://x/o"));
  store.Add(Term::Iri("http://x/s"), Term::Iri("http://x/label"),
            Term::StringLiteral("hello world"));
  store.Add(Term::Iri("http://x/s"), Term::Iri("http://x/count"),
            Term::IntegerLiteral(42));
  store.Freeze();

  std::ostringstream os;
  WriteNTriples(store, os);

  TripleStore back;
  ASSERT_TRUE(ParseNTriples(os.str(), &back).ok());
  back.Freeze();
  EXPECT_EQ(back.size(), store.size());
  EXPECT_NE(back.Lookup(Term::StringLiteral("hello world")), kInvalidTermId);
  EXPECT_NE(back.Lookup(Term::IntegerLiteral(42)), kInvalidTermId);
}

TEST(NTriplesTest, ParsesCommentsAndBlankLines) {
  TripleStore store;
  std::string text =
      "# a comment\n"
      "\n"
      "<http://x/s> <http://x/p> <http://x/o> .\n"
      "<http://x/s> <http://x/p> \"lit\" .\n";
  ASSERT_TRUE(ParseNTriples(text, &store).ok());
  store.Freeze();
  EXPECT_EQ(store.size(), 2u);
}

TEST(NTriplesTest, RejectsMalformedInput) {
  TripleStore store;
  EXPECT_TRUE(ParseNTriples("<a> <b>\n", &store).IsParseError());
  EXPECT_TRUE(ParseNTriples("<a> <b> <c>\n", &store).IsParseError());
  EXPECT_TRUE(ParseNTriples("\"lit\" <b> <c> .\n", &store).IsParseError());
  EXPECT_TRUE(ParseNTriples("<a> \"lit\" <c> .\n", &store).IsParseError());
}

TEST(NTriplesTest, ParsesTypedLiterals) {
  TripleStore store;
  std::string text =
      "<a> <p> \"5\"^^xsd:integer .\n"
      "<a> <p> \"2.5\"^^xsd:double .\n"
      "<a> <p> \"true\"^^xsd:boolean .\n"
      "<a> <p> \"2014-10-01\"^^xsd:date .\n";
  ASSERT_TRUE(ParseNTriples(text, &store).ok());
  store.Freeze();
  EXPECT_NE(store.Lookup(Term::IntegerLiteral(5)), kInvalidTermId);
  EXPECT_NE(store.Lookup(Term(TermKind::kLiteral, "2.5",
                              LiteralType::kDouble)),
            kInvalidTermId);
  EXPECT_NE(store.Lookup(Term::BooleanLiteral(true)), kInvalidTermId);
  EXPECT_NE(store.Lookup(Term::DateLiteral("2014-10-01")), kInvalidTermId);
}

TEST(NTriplesTest, EscapesSurviveRoundTrip) {
  TripleStore store;
  const std::string nasty = "line1\nline2\t\"quoted\" back\\slash\rend";
  store.Add(Term::Iri("http://x/s"), Term::Iri("http://x/p"),
            Term::StringLiteral(nasty));
  store.Add(Term::Iri("http://x/s"), Term::Iri("http://x/p"),
            Term::StringLiteral("plain"));
  store.Freeze();

  std::ostringstream os;
  WriteNTriples(store, os);
  // The writer must keep every triple on its own line despite the newline
  // in the lexical form.
  const std::string text = os.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);

  TripleStore back;
  ASSERT_TRUE(ParseNTriples(os.str(), &back).ok());
  back.Freeze();
  EXPECT_EQ(back.size(), store.size());
  EXPECT_NE(back.Lookup(Term::StringLiteral(nasty)), kInvalidTermId);
}

TEST(NTriplesTest, ParserDecodesEscapes) {
  TripleStore store;
  ASSERT_TRUE(ParseNTriples(
                  "<a> <p> \"tab\\there \\\"q\\\" back\\\\slash\\nnl\" .\n",
                  &store)
                  .ok());
  store.Freeze();
  EXPECT_NE(store.Lookup(Term::StringLiteral("tab\there \"q\" back\\slash\nnl")),
            kInvalidTermId);
}

TEST(DictionaryTest, TermsStoredOnceNotTwice) {
  // The reverse index keys by TermId (4 bytes) through a transparent
  // hash, so big term texts are resident exactly once. With 100 terms of
  // ~4 KB each (~400 KB of text), a Term-keyed index would hold ~800 KB;
  // assert the accounting stays well under that.
  Dictionary d;
  constexpr size_t kTerms = 100;
  constexpr size_t kValueBytes = 4096;
  for (size_t i = 0; i < kTerms; ++i) {
    std::string value(kValueBytes, 'a' + (i % 26));
    value += std::to_string(i);
    d.Intern(Term::Iri(value));
  }
  EXPECT_EQ(d.size(), kTerms);
  const size_t text_bytes = kTerms * kValueBytes;
  EXPECT_LT(d.MemoryUsage(), text_bytes + text_bytes / 2);
  // Lookup still works through the transparent path.
  std::string probe(kValueBytes, 'a');
  probe += "0";
  EXPECT_NE(d.Lookup(Term::Iri(probe)), kInvalidTermId);
  EXPECT_EQ(d.Lookup(Term::Iri("absent")), kInvalidTermId);
}

TEST(DictionaryTest, ReserveKeepsIdsAndLookupsStable) {
  Dictionary d;
  TermId a = d.Intern(Term::Iri("a"));
  d.Reserve(1000);
  EXPECT_EQ(d.Lookup(Term::Iri("a")), a);
  TermId b = d.Intern(Term::Iri("b"));
  EXPECT_EQ(b, a + 1);
  EXPECT_EQ(d.term(a), Term::Iri("a"));
}

}  // namespace
}  // namespace re2xolap::rdf
