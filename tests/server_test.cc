// Tests for the HTTP front door (src/server/): the message layer, the
// session registry, the live socket path, admission control and
// shedding, arrival-anchored deadlines, failpoint fault injection, the
// concurrent-session stress contract, and graceful drain. Every
// server-fixture test binds an ephemeral port on 127.0.0.1 and drives
// real sockets through server::HttpClient.

#include "server/server.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "obs/metrics.h"
#include "server/http.h"
#include "server/http_client.h"
#include "server/session_manager.h"
#include "storage/snapshot.h"
#include "tests/test_data.h"
#include "util/failpoint.h"

namespace re2xolap::server {
namespace {

using re2xolap::testing::BuildFigure1Store;
using re2xolap::testing::kObsClass;

constexpr char kObsQuery[] =
    "SELECT ?obs WHERE { ?obs a <http://test/Observation> }";

// ---------------------------------------------------------------------------
// HTTP message layer (no sockets)
// ---------------------------------------------------------------------------

TEST(HttpParseTest, ParsesRequestLineHeadersAndQueryParams) {
  auto req = ParseRequestHead(
      "POST /query?timeout_ms=250&name=a%20b HTTP/1.1\r\n"
      "Host: localhost\r\nContent-Length: 12\r\nX-Mixed-CASE: kept",
      HttpLimits{});
  ASSERT_TRUE(req.ok()) << req.status();
  EXPECT_EQ(req->method, "POST");
  EXPECT_EQ(req->path, "/query");
  EXPECT_EQ(req->QueryParam("timeout_ms"), "250");
  EXPECT_EQ(req->QueryParamUint("timeout_ms", 0), 250u);
  EXPECT_EQ(req->QueryParam("name"), "a b");
  EXPECT_EQ(req->Header("host"), "localhost");
  EXPECT_EQ(req->Header("x-mixed-case"), "kept");
  EXPECT_EQ(req->content_length, 12u);
  EXPECT_TRUE(req->keep_alive);
}

TEST(HttpParseTest, ConnectionCloseAndHttp10Semantics) {
  auto close11 = ParseRequestHead(
      "GET / HTTP/1.1\r\nConnection: close", HttpLimits{});
  ASSERT_TRUE(close11.ok());
  EXPECT_FALSE(close11->keep_alive);

  auto plain10 = ParseRequestHead("GET / HTTP/1.0", HttpLimits{});
  ASSERT_TRUE(plain10.ok());
  EXPECT_FALSE(plain10->keep_alive);

  auto keep10 = ParseRequestHead(
      "GET / HTTP/1.0\r\nConnection: keep-alive", HttpLimits{});
  ASSERT_TRUE(keep10.ok());
  EXPECT_TRUE(keep10->keep_alive);
}

TEST(HttpParseTest, RejectsMalformedAndUnsupported) {
  EXPECT_TRUE(ParseRequestHead("garbage", HttpLimits{})
                  .status().IsInvalidArgument());
  EXPECT_TRUE(ParseRequestHead("PUT / HTTP/1.1", HttpLimits{})
                  .status().IsInvalidArgument());
  EXPECT_TRUE(ParseRequestHead("GET / HTTP/2.0", HttpLimits{})
                  .status().IsInvalidArgument());
  EXPECT_TRUE(ParseRequestHead("GET noslash HTTP/1.1", HttpLimits{})
                  .status().IsInvalidArgument());
  EXPECT_TRUE(
      ParseRequestHead("POST / HTTP/1.1\r\nTransfer-Encoding: chunked",
                       HttpLimits{})
          .status().IsInvalidArgument());
  EXPECT_TRUE(
      ParseRequestHead("POST / HTTP/1.1\r\nContent-Length: 9x", HttpLimits{})
          .status().IsInvalidArgument());
}

TEST(HttpParseTest, OversizedBodyIsResourceExhausted) {
  HttpLimits limits;
  limits.max_body_bytes = 64;
  auto req = ParseRequestHead("POST / HTTP/1.1\r\nContent-Length: 65", limits);
  EXPECT_TRUE(req.status().IsResourceExhausted());
}

TEST(HttpSerializeTest, ResponseCarriesLengthConnectionAndExtras) {
  HttpResponse resp;
  resp.status = 503;
  resp.extra_headers.emplace_back("Retry-After", "1");
  resp.body = "{}";
  std::string wire = SerializeResponse(resp, /*keep_alive=*/false);
  EXPECT_NE(wire.find("HTTP/1.1 503 Service Unavailable\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Retry-After: 1\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 2), "{}");
}

// ---------------------------------------------------------------------------
// Server fixture
// ---------------------------------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = BuildFigure1Store();
    auto vsg = core::VirtualSchemaGraph::Build(*store_, kObsClass);
    ASSERT_TRUE(vsg.ok());
    vsg_ = std::make_unique<core::VirtualSchemaGraph>(std::move(vsg).value());
    text_ = std::make_unique<rdf::TextIndex>(*store_);
    engine_ = std::make_unique<engine::QueryEngine>(*store_);
    util::FailpointRegistry::Global().DisarmAll();
  }

  void TearDown() override {
    util::FailpointRegistry::Global().DisarmAll();
    if (server_) server_->Stop();
  }

  /// Starts a server over the fixture dataset; returns a client for it.
  HttpClient StartServer(ServerConfig config = {}) {
    Dataset dataset{store_.get(), engine_.get(), vsg_.get(), text_.get()};
    server_ = std::make_unique<Server>(dataset, config);
    util::Status st = server_->Start();
    EXPECT_TRUE(st.ok()) << st;
    return HttpClient("127.0.0.1", server_->port());
  }

  std::unique_ptr<rdf::TripleStore> store_;
  std::unique_ptr<core::VirtualSchemaGraph> vsg_;
  std::unique_ptr<rdf::TextIndex> text_;
  std::unique_ptr<engine::QueryEngine> engine_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, HealthzReportsEpochAndStatus) {
  HttpClient client = StartServer();
  auto resp = client.Get("/healthz");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("\"status\": \"serving\""), std::string::npos);
  EXPECT_NE(resp->body.find("\"freeze_epoch\": "), std::string::npos);
  EXPECT_NE(resp->body.find("\"session_routes\": true"), std::string::npos);
}

TEST_F(ServerTest, MetricsServePrometheusTextFormat) {
  HttpClient client = StartServer();
  ASSERT_TRUE(client.Get("/healthz").ok());  // ensure one request counted
  auto resp = client.Get("/metrics");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->Header("content-type"), "text/plain; version=0.0.4");
  EXPECT_NE(resp->body.find("server_requests"), std::string::npos);
}

TEST_F(ServerTest, QueryExecutesSparqlOverSharedEngine) {
  HttpClient client = StartServer();
  auto resp = client.Post("/query", kObsQuery);
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("\"columns\": [\"obs\"]"), std::string::npos);
  EXPECT_NE(resp->body.find("\"row_count\": 5"), std::string::npos);
  EXPECT_NE(resp->body.find("\"stats\": "), std::string::npos);

  // The row cap truncates the payload but reports the true count.
  auto limited = client.Post("/query?limit=2", kObsQuery);
  ASSERT_TRUE(limited.ok());
  EXPECT_NE(limited->body.find("\"row_count\": 5"), std::string::npos);
  EXPECT_NE(limited->body.find("\"truncated\": true"), std::string::npos);
}

TEST_F(ServerTest, ErrorTaxonomyMapsStatusesToHttpCodes) {
  HttpClient client = StartServer();
  // Parse error -> 400 with the typed code in the body.
  auto parse = client.Post("/query", "SELECT WHERE garbage");
  ASSERT_TRUE(parse.ok());
  EXPECT_EQ(parse->status, 400);
  // Unknown route -> 404.
  auto missing = client.Get("/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
  // Wrong method -> 405 with Allow.
  auto method = client.Get("/query");
  ASSERT_TRUE(method.ok());
  EXPECT_EQ(method->status, 405);
  EXPECT_EQ(method->Header("allow"), "POST");
  // Empty body -> 400.
  auto empty = client.Post("/query", "");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->status, 400);
  // Guard row budget -> 503 without Retry-After (not load shedding).
  auto budget = client.Post("/query?max_rows=1", kObsQuery);
  ASSERT_TRUE(budget.ok());
  EXPECT_EQ(budget->status, 503);
  EXPECT_TRUE(budget->Header("retry-after").empty());
}

TEST_F(ServerTest, SessionLifecycleOverHttp) {
  HttpClient client = StartServer();
  auto created = client.Post("/session", "");
  ASSERT_TRUE(created.ok());
  ASSERT_EQ(created->status, 200);
  // Body is {"session": "s-1"}; pull out the id.
  std::string id = "s-1";
  ASSERT_NE(created->body.find("\"session\": \"" + id + "\""),
            std::string::npos)
      << created->body;

  auto start = client.Post("/session/" + id + "/start", "Germany\n2014\n");
  ASSERT_TRUE(start.ok());
  ASSERT_EQ(start->status, 200) << start->body;
  EXPECT_NE(start->body.find("\"sparql\": "), std::string::npos);

  auto pick = client.Post("/session/" + id + "/pick?index=0", "");
  ASSERT_TRUE(pick.ok());
  ASSERT_EQ(pick->status, 200) << pick->body;

  auto exec = client.Post("/session/" + id + "/execute", "");
  ASSERT_TRUE(exec.ok());
  ASSERT_EQ(exec->status, 200) << exec->body;
  EXPECT_NE(exec->body.find("\"row_count\": 3"), std::string::npos)
      << exec->body;

  auto refine = client.Post("/session/" + id + "/refine?kind=disaggregate", "");
  ASSERT_TRUE(refine.ok());
  ASSERT_EQ(refine->status, 200) << refine->body;
  EXPECT_NE(refine->body.find("\"refinements\": ["), std::string::npos);

  auto pick_ref =
      client.Post("/session/" + id + "/pick_refinement?index=0", "");
  ASSERT_TRUE(pick_ref.ok());
  ASSERT_EQ(pick_ref->status, 200) << pick_ref->body;

  auto back = client.Post("/session/" + id + "/back", "");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->status, 200);

  auto bad_kind = client.Post("/session/" + id + "/refine?kind=nope", "");
  ASSERT_TRUE(bad_kind.ok());
  EXPECT_EQ(bad_kind->status, 400);

  auto removed = client.Request("DELETE", "/session/" + id);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed->status, 200);

  auto gone = client.Post("/session/" + id + "/execute", "");
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(gone->status, 404);
  EXPECT_EQ(server_->sessions().size(), 0u);
}

TEST_F(ServerTest, SessionCapShedsCreate) {
  ServerConfig config;
  config.max_sessions = 1;
  HttpClient client = StartServer(config);
  auto first = client.Post("/session", "");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->status, 200);
  auto second = client.Post("/session", "");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->status, 503);
}

TEST_F(ServerTest, QueueWaitCountsAgainstDeadline) {
  // A 1ms deadline cannot survive a 50ms injected parse delay: the guard
  // anchors at arrival, so Dispatch answers 504 without executing.
  HttpClient client = StartServer();
  ASSERT_TRUE(util::FailpointRegistry::Global()
                  .Configure("server.parse=delay:50")
                  .ok());
  auto resp = client.Post("/query?timeout_ms=1", kObsQuery);
  util::FailpointRegistry::Global().DisarmAll();
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 504) << resp->body;
  EXPECT_EQ(server_->stats().expired_in_queue, 1u);
}

TEST_F(ServerTest, FullQueueShedsWith503RetryAfter) {
  // C = 1 worker and a queue of 1: with the single worker pinned in a
  // 300ms parse delay and the queue holding the second request, the
  // third must be shed at admission.
  ServerConfig config;
  config.worker_threads = 1;
  config.queue_capacity = 1;
  HttpClient shed_client = StartServer(config);
  ASSERT_TRUE(util::FailpointRegistry::Global()
                  .Configure("server.parse=delay:300")
                  .ok());
  std::thread t1([&] {
    HttpClient c("127.0.0.1", server_->port());
    (void)c.Post("/query", kObsQuery);
  });
  std::thread t2([&] {
    HttpClient c("127.0.0.1", server_->port());
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    (void)c.Post("/query", kObsQuery);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(160));
  auto resp = shed_client.Post("/query", kObsQuery);
  t1.join();
  t2.join();
  util::FailpointRegistry::Global().DisarmAll();
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 503) << resp->body;
  EXPECT_EQ(resp->Header("retry-after"), "1");
  EXPECT_NE(resp->body.find("queue"), std::string::npos);
  EXPECT_GE(server_->stats().shed, 1u);
}

TEST_F(ServerTest, AcceptFailpointDropsConnectionsWithoutCrashing) {
  HttpClient client = StartServer();
  ASSERT_TRUE(util::FailpointRegistry::Global()
                  .Configure("server.accept=error*2")
                  .ok());
  // The two faulted accepts close the fresh connection; the client sees
  // a transport error, not a hang or a crash.
  EXPECT_FALSE(HttpClient("127.0.0.1", server_->port())
                   .Get("/healthz").ok());
  EXPECT_FALSE(HttpClient("127.0.0.1", server_->port())
                   .Get("/healthz").ok());
  // Budget exhausted: service resumes.
  auto resp = client.Get("/healthz");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(server_->stats().accept_faults, 2u);
}

TEST_F(ServerTest, ParseFailpointSurfacesAs503) {
  HttpClient client = StartServer();
  ASSERT_TRUE(util::FailpointRegistry::Global()
                  .Configure("server.parse=error*1")
                  .ok());
  auto resp = client.Post("/query", kObsQuery);
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 503);
  EXPECT_EQ(resp->Header("retry-after"), "1");
  auto after = client.Post("/query", kObsQuery);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->status, 200);
}

TEST_F(ServerTest, WriteFailpointDropsResponseNotServer) {
  HttpClient client = StartServer();
  ASSERT_TRUE(util::FailpointRegistry::Global()
                  .Configure("server.write=error*1")
                  .ok());
  // The faulted write closes the connection mid-response; the client's
  // one reconnect retry then gets a clean answer (the failpoint budget
  // is spent). Either way the server must survive.
  auto resp = client.Post("/query", kObsQuery);
  if (resp.ok()) {
    EXPECT_EQ(resp->status, 200);
  }
  auto after = client.Post("/query", kObsQuery);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->status, 200);
  EXPECT_EQ(server_->stats().write_faults, 1u);
}

TEST_F(ServerTest, GracefulDrainFinishesInflightRequests) {
  ServerConfig config;
  config.drain_grace_millis = 2'000;
  HttpClient client = StartServer(config);
  ASSERT_TRUE(util::FailpointRegistry::Global()
                  .Configure("engine.execute=delay:100")
                  .ok());
  std::atomic<int> status{0};
  std::thread inflight([&] {
    HttpClient c("127.0.0.1", server_->port());
    auto resp = c.Post("/query", kObsQuery);
    if (resp.ok()) status.store(resp->status);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server_->RequestStop();
  server_->Stop();
  inflight.join();
  util::FailpointRegistry::Global().DisarmAll();
  // The in-flight request finished inside the grace period.
  EXPECT_EQ(status.load(), 200);
  // The server is down: new connections fail.
  EXPECT_FALSE(HttpClient("127.0.0.1", server_->port())
                   .Get("/healthz").ok());
}

TEST_F(ServerTest, DrainGuardCancelsStragglers) {
  ServerConfig config;
  config.drain_grace_millis = 30;
  HttpClient client = StartServer(config);
  ASSERT_TRUE(util::FailpointRegistry::Global()
                  .Configure("engine.execute=delay:300")
                  .ok());
  std::atomic<int> status{0};
  std::string body;
  std::mutex body_mu;
  std::thread straggler([&] {
    HttpClient c("127.0.0.1", server_->port());
    auto resp = c.Post("/query", kObsQuery);
    if (resp.ok()) {
      status.store(resp->status);
      std::lock_guard<std::mutex> lock(body_mu);
      body = resp->body;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server_->RequestStop();
  server_->Stop();  // grace 30ms < 300ms delay: the guard gets cancelled
  straggler.join();
  util::FailpointRegistry::Global().DisarmAll();
  EXPECT_EQ(status.load(), 503);
  std::lock_guard<std::mutex> lock(body_mu);
  EXPECT_NE(body.find("Cancelled"), std::string::npos) << body;
}

TEST_F(ServerTest, WaitForStopRequestUnblocksOnSignalPath) {
  HttpClient client = StartServer();
  std::thread signaler([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    server_->RequestStop();  // what the SIGTERM handler calls
  });
  server_->WaitForStopRequest();
  signaler.join();
  EXPECT_TRUE(server_->draining());
  server_->Stop();
}

// The satellite-4 stress contract: N threads of mixed execute /
// synthesize / refine traffic plus deliberately over-budget and
// past-deadline requests; every response is typed, in-flight never
// exceeds C, no session leaks, TSan-clean.
TEST_F(ServerTest, ConcurrentSessionStressStaysBounded) {
  // The stress runs over a snapshot-restored dataset — the deployment
  // shape (re2xolap_server always boots from an image), and it proves
  // the restored store/text/graph honor the concurrent-read contract.
  const std::string path =
      ::testing::TempDir() + "/server_stress.snap";
  storage::VsgImage image = storage::MakeVsgImage(*vsg_);
  ASSERT_TRUE(storage::SaveSnapshot(path, *store_, text_.get(), &image).ok());
  auto loaded = storage::LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_TRUE(loaded->text != nullptr);
  ASSERT_TRUE(loaded->vsg.has_value());
  auto restored_vsg = core::VirtualSchemaGraph::FromParts(
      loaded->vsg->nodes, loaded->vsg->edges, loaded->vsg->measures,
      loaded->vsg->observation_attrs);
  ASSERT_TRUE(restored_vsg.ok()) << restored_vsg.status();
  store_ = std::move(loaded->store);
  text_ = std::move(loaded->text);
  *vsg_ = std::move(restored_vsg).value();
  engine_ = std::make_unique<engine::QueryEngine>(*store_);

  ServerConfig config;
  config.worker_threads = 4;
  config.queue_capacity = 128;
  HttpClient main_client = StartServer(config);
  constexpr size_t kThreads = 8;
  constexpr int kRounds = 6;
  std::atomic<uint64_t> bad_responses{0};
  std::atomic<uint64_t> transport_errors{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      HttpClient client("127.0.0.1", server_->port());
      auto check = [&](const util::Result<ClientResponse>& resp,
                       std::initializer_list<int> allowed) {
        if (!resp.ok()) {
          ++transport_errors;
          return false;
        }
        for (int s : allowed) {
          if (resp->status == s) return resp->status == 200;
        }
        ++bad_responses;
        return false;
      };
      for (int round = 0; round < kRounds; ++round) {
        auto created = client.Post("/session", "");
        if (!check(created, {200, 503})) continue;
        std::string id;
        size_t at = created->body.find("s-");
        size_t end = created->body.find('"', at);
        id = created->body.substr(at, end - at);
        std::string base = "/session/" + id;

        // Mixed traffic: synthesis, pick, execute (sometimes with a
        // hostile budget or an already-expired deadline), refine.
        auto started = client.Post(base + "/start", "Germany\n2014\n");
        if (check(started, {200, 503, 504})) {
          (void)client.Post(base + "/pick?index=0", "");
          const char* exec_target =
              (round % 3 == 0)   ? "/execute?max_rows=1"
              : (round % 3 == 1) ? "/execute?timeout_ms=1"
                                 : "/execute";
          auto exec = client.Post(base + exec_target, "");
          if (check(exec, {200, 503, 504})) {
            auto refine =
                client.Post(base + "/refine?kind=disaggregate", "");
            check(refine, {200, 400, 503, 504});
          }
        }
        (void)client.Request("DELETE", base);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad_responses.load(), 0u);
  EXPECT_EQ(transport_errors.load(), 0u);
  const ServerStats stats = server_->stats();
  // The hard robustness invariant: in-flight executions never exceeded
  // the worker cap C.
  EXPECT_LE(stats.max_inflight, config.worker_threads);
  EXPECT_GE(stats.requests, kThreads * kRounds);
  // Every created session was deleted (or shed before creation).
  EXPECT_EQ(server_->sessions().size(), 0u);
}

// ---------------------------------------------------------------------------
// SessionManager (no sockets)
// ---------------------------------------------------------------------------

class SessionManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = BuildFigure1Store();
    auto vsg = core::VirtualSchemaGraph::Build(*store_, kObsClass);
    ASSERT_TRUE(vsg.ok());
    vsg_ = std::make_unique<core::VirtualSchemaGraph>(std::move(vsg).value());
    text_ = std::make_unique<rdf::TextIndex>(*store_);
    engine_ = std::make_unique<engine::QueryEngine>(*store_);
  }

  util::Result<std::string> Create(SessionManager& mgr) {
    return mgr.Create(store_.get(), vsg_.get(), text_.get(), engine_.get(),
                      sparql::ExecOptions{});
  }

  std::unique_ptr<rdf::TripleStore> store_;
  std::unique_ptr<core::VirtualSchemaGraph> vsg_;
  std::unique_ptr<rdf::TextIndex> text_;
  std::unique_ptr<engine::QueryEngine> engine_;
};

TEST_F(SessionManagerTest, CreateAcquireRemoveRoundTrip) {
  SessionManager mgr(/*max_sessions=*/4, /*idle_millis=*/0);
  auto id = Create(mgr);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(mgr.size(), 1u);
  auto session = mgr.Acquire(*id);
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(mgr.Remove(*id).ok());
  EXPECT_TRUE(mgr.Acquire(*id).status().IsNotFound());
  EXPECT_TRUE(mgr.Remove(*id).IsNotFound());
  // The shared_ptr still held keeps the session alive after removal.
  EXPECT_FALSE((*session)->session.has_state());
}

TEST_F(SessionManagerTest, CapAndStoreOnlyDatasetAreTypedErrors) {
  SessionManager mgr(/*max_sessions=*/1, /*idle_millis=*/0);
  ASSERT_TRUE(Create(mgr).ok());
  EXPECT_TRUE(Create(mgr).status().IsResourceExhausted());
  EXPECT_TRUE(mgr
                  .Create(store_.get(), nullptr, nullptr, engine_.get(),
                          sparql::ExecOptions{})
                  .status().IsInvalidArgument());
}

TEST_F(SessionManagerTest, IdleSessionsAreEvicted) {
  SessionManager mgr(/*max_sessions=*/4, /*idle_millis=*/1);
  auto id = Create(mgr);
  ASSERT_TRUE(id.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(mgr.EvictIdle(), 1u);
  EXPECT_EQ(mgr.size(), 0u);
  EXPECT_TRUE(mgr.Acquire(*id).status().IsNotFound());
}

TEST_F(SessionManagerTest, ZeroTtlNeverEvicts) {
  SessionManager mgr(/*max_sessions=*/4, /*idle_millis=*/0);
  ASSERT_TRUE(Create(mgr).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(mgr.EvictIdle(), 0u);
  EXPECT_EQ(mgr.size(), 1u);
}

}  // namespace
}  // namespace re2xolap::server
