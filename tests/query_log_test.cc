// The query telemetry layer (obs/query_log.h): exactly one QueryRecord
// per QueryEngine::Execute path (hit / miss / error / guard violation /
// retry, incl. failpoint-armed runs), the sparql::Execute escape hatch,
// session interactions, and snapshot save/load; slow-query capture with
// rendered operator trees; the bounded ring; the JSONL sink; and the
// introspection report.

#include "obs/query_log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "core/virtual_schema_graph.h"
#include "engine/query_engine.h"
#include "rdf/text_index.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "storage/snapshot.h"
#include "tests/json_validator.h"
#include "tests/test_data.h"
#include "util/exec_guard.h"
#include "util/failpoint.h"
#include "util/status.h"

namespace re2xolap::obs {
namespace {

using re2xolap::testing::BuildFigure1Store;
using re2xolap::testing::IsValidJson;
using re2xolap::testing::kObsClass;

constexpr char kObsQuery[] =
    "SELECT ?obs WHERE { ?obs a <http://test/Observation> }";

/// Pins the recorder to a known configuration (no sink, generous ring,
/// latency capture off — error-status capture stays on) and disarms any
/// environment-armed failpoints, so assertions hold under the chaos CI
/// job too.
class QueryLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::FailpointRegistry::Global().DisarmAll();
    QueryLogConfig config;
    config.slow_threshold_millis = -1;  // only error statuses capture
    QueryLog::Global().SetEnabled(true);
    QueryLog::Global().Configure(std::move(config));
    store = BuildFigure1Store();
  }
  void TearDown() override {
    util::FailpointRegistry::Global().DisarmAll();
    QueryLog::Global().Configure(QueryLogConfig{});
  }

  /// High-water mark: records appended after this call have id > the
  /// returned value.
  static uint64_t Mark() {
    std::vector<QueryRecord> recs = QueryLog::Global().Snapshot();
    return recs.empty() ? 0 : recs.back().id;
  }

  /// Records appended since `mark`, in id order.
  static std::vector<QueryRecord> Since(uint64_t mark) {
    std::vector<QueryRecord> out;
    for (const QueryRecord& r : QueryLog::Global().Snapshot()) {
      if (r.id > mark) out.push_back(r);
    }
    return out;
  }

  static size_t CountOp(const std::vector<QueryRecord>& recs, QueryOp op) {
    size_t n = 0;
    for (const QueryRecord& r : recs) n += r.op == op ? 1 : 0;
    return n;
  }

  std::unique_ptr<rdf::TripleStore> store;
};

// --- mirror tables -----------------------------------------------------------

TEST_F(QueryLogTest, StatusNamesMatchUtilStatusCodes) {
  // obs cannot link util (layering), so RecordStatusName mirrors
  // util::StatusCodeToString; this test is the pin holding them together.
  for (int code = 0; code <= static_cast<int>(util::StatusCode::kCancelled);
       ++code) {
    EXPECT_STREQ(RecordStatusName(static_cast<uint8_t>(code)),
                 util::StatusCodeToString(static_cast<util::StatusCode>(code)))
        << "status code " << code;
  }
  EXPECT_STREQ(RecordStatusName(200), "Unknown");
}

TEST_F(QueryLogTest, ExecutorNamesMatchExecutorKinds) {
  EXPECT_STREQ(
      RecordExecutorName(static_cast<uint8_t>(sparql::ExecutorKind::kVolcano)),
      "volcano");
  EXPECT_STREQ(RecordExecutorName(
                   static_cast<uint8_t>(sparql::ExecutorKind::kVectorized)),
               "vectorized");
  EXPECT_STREQ(RecordExecutorName(0), "none");
}

TEST_F(QueryLogTest, FingerprintIsStableFnv1a) {
  EXPECT_EQ(FingerprintQuery(""), 14695981039346656037ull);  // offset basis
  EXPECT_EQ(FingerprintQuery("a"),
            (14695981039346656037ull ^ 'a') * 1099511628211ull);
  EXPECT_EQ(FingerprintQuery(kObsQuery), FingerprintQuery(kObsQuery));
  EXPECT_NE(FingerprintQuery(kObsQuery), FingerprintQuery("SELECT * {}"));
}

TEST_F(QueryLogTest, OpNamesAreExhaustive) {
  for (size_t i = 0; i < kQueryOpCount; ++i) {
    EXPECT_STRNE(QueryOpName(static_cast<QueryOp>(i)), "?") << "op " << i;
  }
}

// --- exactly one record per engine Execute path ------------------------------

TEST_F(QueryLogTest, EngineMissThenHitRecordExactlyOnce) {
  engine::QueryEngine engine(*store);
  const uint64_t mark = Mark();

  ASSERT_TRUE(engine.ExecuteText(kObsQuery).ok());
  std::vector<QueryRecord> recs = Since(mark);
  ASSERT_EQ(recs.size(), 1u) << "miss path must append exactly one record";
  EXPECT_EQ(recs[0].op, QueryOp::kEngineExecute);
  EXPECT_EQ(recs[0].cache, CacheOutcome::kMiss);
  EXPECT_EQ(recs[0].status, 0);
  EXPECT_EQ(recs[0].rows_out, 5u);
  EXPECT_GT(recs[0].triples_scanned, 0u);
  EXPECT_EQ(recs[0].freeze_epoch, store->freeze_epoch());
  EXPECT_EQ(recs[0].fingerprint,
            FingerprintQuery(sparql::ToSparql(*sparql::ParseQuery(kObsQuery))));
  const uint8_t resolved = static_cast<uint8_t>(
      sparql::ResolveExecutor(sparql::ExecutorKind::kDefault));
  EXPECT_EQ(recs[0].executor, resolved);

  ASSERT_TRUE(engine.ExecuteText(kObsQuery).ok());
  recs = Since(mark);
  ASSERT_EQ(recs.size(), 2u) << "hit path must append exactly one record";
  EXPECT_EQ(recs[1].cache, CacheOutcome::kHit);
  EXPECT_EQ(recs[1].rows_out, 5u);
  // A hit scans nothing; identity is unchanged.
  EXPECT_EQ(recs[1].triples_scanned, 0u);
  EXPECT_EQ(recs[1].fingerprint, recs[0].fingerprint);
}

TEST_F(QueryLogTest, EngineBypassAndErrorRecordExactlyOnce) {
  engine::QueryEngine engine(*store);
  ASSERT_TRUE(engine.ExecuteText(kObsQuery).ok());  // warm the cache

  // Profiled runs bypass the result cache.
  uint64_t mark = Mark();
  sparql::ExecOptions profiled;
  profiled.profile = true;
  ASSERT_TRUE(engine.ExecuteText(kObsQuery, profiled).ok());
  std::vector<QueryRecord> recs = Since(mark);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].cache, CacheOutcome::kBypass);

  // An execution error (ORDER BY over an unprojected column fails after
  // the cache lookup missed) is still exactly one record.
  mark = Mark();
  auto bad = engine.ExecuteText(
      "SELECT ?obs WHERE { ?obs a <http://test/Observation> } "
      "ORDER BY ?nonexistent");
  ASSERT_FALSE(bad.ok());
  recs = Since(mark);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].status, static_cast<uint8_t>(bad.status().code()));
  EXPECT_NE(recs[0].status, 0);
  EXPECT_EQ(recs[0].cache, CacheOutcome::kMiss);
  EXPECT_EQ(recs[0].rows_out, 0u);
}

TEST_F(QueryLogTest, RetriedExecutionIsOneRecordWithRetryCount) {
  ASSERT_TRUE(util::FailpointRegistry::Global()
                  .Configure("engine.execute=error*2")
                  .ok());
  engine::QueryEngine engine(*store);  // default config retries twice
  const uint64_t mark = Mark();
  ASSERT_TRUE(engine.ExecuteText(kObsQuery).ok());
  std::vector<QueryRecord> recs = Since(mark);
  ASSERT_EQ(recs.size(), 1u)
      << "retries happen inside one logical Execute: one record";
  EXPECT_EQ(recs[0].status, 0);
  EXPECT_EQ(recs[0].retries, 2u);
}

TEST_F(QueryLogTest, RetryBudgetExhaustionRecordsTheError) {
  ASSERT_TRUE(util::FailpointRegistry::Global()
                  .Configure("engine.execute=error*9")
                  .ok());
  engine::EngineConfig config;
  config.max_transient_retries = 1;
  config.retry_backoff_millis = 0;
  engine::QueryEngine engine(*store, config);
  const uint64_t mark = Mark();
  auto r = engine.ExecuteText(kObsQuery);
  ASSERT_FALSE(r.ok());
  std::vector<QueryRecord> recs = Since(mark);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].status,
            static_cast<uint8_t>(util::StatusCode::kUnavailable));
  EXPECT_EQ(recs[0].retries, 1u);
}

TEST_F(QueryLogTest, GuardViolationRecordsOnceAndCapturesSlow) {
  engine::QueryEngine engine(*store);
  util::ExecGuard guard = util::ExecGuard::WithDeadline(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  sparql::ExecOptions opts;
  opts.guard = &guard;
  const uint64_t mark = Mark();
  auto r = engine.ExecuteText(kObsQuery, opts);
  ASSERT_FALSE(r.ok());
  ASSERT_TRUE(r.status().IsTimeout());

  std::vector<QueryRecord> recs = Since(mark);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].status, static_cast<uint8_t>(util::StatusCode::kTimeout));
  EXPECT_EQ(recs[0].cache, CacheOutcome::kNone);  // rejected pre-probe

  // Guard-verdict statuses are captured even with latency capture off,
  // and the entry carries the query's identity.
  bool found = false;
  for (const SlowQueryEntry& e : QueryLog::Global().SlowSnapshot()) {
    if (e.record.id != recs[0].id) continue;
    found = true;
    EXPECT_FALSE(e.query.empty());
  }
  EXPECT_TRUE(found);
}

TEST_F(QueryLogTest, AskThroughEngineIsOneRecord) {
  engine::QueryEngine engine(*store);
  const uint64_t mark = Mark();
  auto r = engine.ExecuteText("ASK { ?obs a <http://test/Observation> }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The ASK rewrite recurses into sparql::Execute; nested scopes must not
  // double-record.
  std::vector<QueryRecord> recs = Since(mark);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].op, QueryOp::kEngineExecute);
}

// --- the engine-free escape hatch --------------------------------------------

TEST_F(QueryLogTest, DirectSparqlExecuteRecordsOnce) {
  const uint64_t mark = Mark();
  auto r = sparql::ExecuteText(*store, kObsQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<QueryRecord> recs = Since(mark);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].op, QueryOp::kSparqlExecute);
  EXPECT_EQ(recs[0].cache, CacheOutcome::kNone);  // no cache at this layer
  EXPECT_EQ(recs[0].rows_out, 5u);
  EXPECT_GT(recs[0].triples_scanned, 0u);

  // ASK via the escape hatch: the inner probe stays silent.
  const uint64_t ask_mark = Mark();
  auto ask = sparql::ExecuteText(*store, "ASK { ?o a <http://test/Observation> }");
  ASSERT_TRUE(ask.ok());
  recs = Since(ask_mark);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].op, QueryOp::kSparqlExecute);
}

// --- slow-query capture ------------------------------------------------------

TEST_F(QueryLogTest, SlowRecordsRetainTheOperatorTree) {
  QueryLogConfig config;
  config.slow_threshold_millis = 0;  // everything is "slow"
  QueryLog::Global().Configure(std::move(config));

  engine::QueryEngine engine(*store);
  const uint64_t mark = Mark();
  ASSERT_TRUE(engine.ExecuteText(kObsQuery).ok());
  std::vector<QueryRecord> recs = Since(mark);
  ASSERT_EQ(recs.size(), 1u);

  std::vector<SlowQueryEntry> slow = QueryLog::Global().SlowSnapshot();
  ASSERT_FALSE(slow.empty());
  const SlowQueryEntry& entry = slow.back();
  EXPECT_EQ(entry.record.id, recs[0].id);
  // The captured context: normalized query text + rendered
  // ExplainAnalyze tree (root operator "select", per-pattern "scan").
  EXPECT_NE(entry.query.find("SELECT"), std::string::npos) << entry.query;
  EXPECT_NE(entry.detail.find("select"), std::string::npos) << entry.detail;
  EXPECT_NE(entry.detail.find("scan"), std::string::npos) << entry.detail;
}

TEST_F(QueryLogTest, SlowLogIsBounded) {
  QueryLogConfig config;
  config.slow_threshold_millis = 0;
  config.slow_capacity = 4;
  QueryLog::Global().Configure(std::move(config));

  engine::QueryEngine engine(*store);
  sparql::ExecOptions profiled;  // bypass the result cache: each run re-executes
  profiled.profile = true;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.ExecuteText(kObsQuery, profiled).ok());
  }
  std::vector<SlowQueryEntry> slow = QueryLog::Global().SlowSnapshot();
  EXPECT_EQ(slow.size(), 4u);
  // Oldest evicted first: the retained entries are the most recent.
  for (size_t i = 1; i < slow.size(); ++i) {
    EXPECT_GT(slow[i].record.id, slow[i - 1].record.id);
  }
}

// --- session interactions ----------------------------------------------------

TEST_F(QueryLogTest, SessionInteractionsRecordTheirOps) {
  auto vsg_result = core::VirtualSchemaGraph::Build(*store, kObsClass);
  ASSERT_TRUE(vsg_result.ok());
  core::VirtualSchemaGraph vsg = std::move(vsg_result).value();
  rdf::TextIndex text(*store);
  core::Session session(store.get(), &vsg, &text);

  uint64_t mark = Mark();
  ASSERT_TRUE(session.Start({"Germany", "2014"}).ok());
  std::vector<QueryRecord> recs = Since(mark);
  EXPECT_EQ(CountOp(recs, QueryOp::kSessionSynthesize), 1u);
  // ReOLAP validation probes execute through the engine and each record
  // on their own (they are real queries).
  EXPECT_GE(CountOp(recs, QueryOp::kEngineExecute), 1u);

  ASSERT_TRUE(session.PickCandidate(0).ok());
  ASSERT_TRUE(session.Execute().ok());

  mark = Mark();
  ASSERT_TRUE(session.Refine(core::RefinementKind::kDisaggregate).ok());
  recs = Since(mark);
  EXPECT_EQ(CountOp(recs, QueryOp::kSessionRefine), 1u);

  mark = Mark();
  ASSERT_TRUE(session.Slice(0).ok());
  recs = Since(mark);
  EXPECT_EQ(CountOp(recs, QueryOp::kSessionSlice), 1u);
  for (const QueryRecord& r : recs) {
    if (r.op == QueryOp::kSessionSlice) {
      EXPECT_NE(r.fingerprint, 0u);  // fingerprints the current query
    }
  }
}

TEST_F(QueryLogTest, SessionExcludeNegativeRecords) {
  auto vsg_result = core::VirtualSchemaGraph::Build(*store, kObsClass);
  ASSERT_TRUE(vsg_result.ok());
  core::VirtualSchemaGraph vsg = std::move(vsg_result).value();
  rdf::TextIndex text(*store);
  core::Session session(store.get(), &vsg, &text);
  ASSERT_TRUE(session.Start({"Asia"}).ok());
  ASSERT_TRUE(session.PickCandidate(0).ok());

  uint64_t mark = Mark();
  ASSERT_TRUE(session.ExcludeNegative({"Africa"}).ok());
  EXPECT_EQ(CountOp(Since(mark), QueryOp::kSessionExclude), 1u);

  // A rejected exclusion (no current query after rewinding past the root
  // is impossible, but an unusable negative value is) records the error.
  mark = Mark();
  ASSERT_FALSE(session.ExcludeNegative({}).ok());
  std::vector<QueryRecord> recs = Since(mark);
  ASSERT_EQ(CountOp(recs, QueryOp::kSessionExclude), 1u);
  for (const QueryRecord& r : recs) {
    if (r.op == QueryOp::kSessionExclude) {
      EXPECT_NE(r.status, 0);
    }
  }
}

// --- snapshot save/load ------------------------------------------------------

TEST_F(QueryLogTest, SnapshotSaveAndLoadRecord) {
  const std::string path =
      ::testing::TempDir() + "re2x_query_log_test_snapshot.snap";
  uint64_t mark = Mark();
  ASSERT_TRUE(
      storage::SaveSnapshot(path, *store, nullptr, nullptr, {}).ok());
  std::vector<QueryRecord> recs = Since(mark);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].op, QueryOp::kSnapshotSave);
  EXPECT_EQ(recs[0].status, 0);
  EXPECT_EQ(recs[0].rows_out, store->size());
  EXPECT_EQ(recs[0].freeze_epoch, store->freeze_epoch());
  EXPECT_EQ(recs[0].fingerprint, FingerprintQuery(path));

  mark = Mark();
  auto loaded = storage::LoadSnapshot(path, {});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  recs = Since(mark);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].op, QueryOp::kSnapshotLoad);
  EXPECT_EQ(recs[0].rows_out, loaded->info.triple_count);

  // A failing load is a record too.
  mark = Mark();
  ASSERT_FALSE(storage::LoadSnapshot(path + ".missing", {}).ok());
  recs = Since(mark);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_NE(recs[0].status, 0);
  std::remove(path.c_str());
}

// --- the ring ----------------------------------------------------------------

TEST_F(QueryLogTest, RingIsBoundedWithMonotoneIds) {
  QueryLogConfig config;
  config.ring_capacity = 32;
  QueryLog::Global().Configure(std::move(config));

  const uint64_t appended_before = QueryLog::Global().total_appended();
  for (int i = 0; i < 500; ++i) {
    QueryRecord rec;
    rec.op = QueryOp::kSparqlExecute;
    EXPECT_GT(QueryLog::Global().Append(rec), 0u);
    EXPECT_GT(rec.id, 0u);  // assigned in place
  }
  EXPECT_EQ(QueryLog::Global().total_appended(), appended_before + 500);

  std::vector<QueryRecord> recs = QueryLog::Global().Snapshot();
  EXPECT_LE(recs.size(), 32u);
  EXPECT_FALSE(recs.empty());
  for (size_t i = 1; i < recs.size(); ++i) {
    EXPECT_GT(recs[i].id, recs[i - 1].id);
  }
}

TEST_F(QueryLogTest, DisabledRecorderAppendsNothing) {
  QueryLog::Global().SetEnabled(false);
  engine::QueryEngine engine(*store);
  const uint64_t before = QueryLog::Global().total_appended();
  ASSERT_TRUE(engine.ExecuteText(kObsQuery).ok());
  EXPECT_EQ(QueryLog::Global().total_appended(), before);
  QueryLog::Global().SetEnabled(true);
}

// --- JSONL sink --------------------------------------------------------------

TEST_F(QueryLogTest, JsonlSinkEmitsOneValidJsonObjectPerRecord) {
  const std::string path =
      ::testing::TempDir() + "re2x_query_log_test_sink.jsonl";
  std::remove(path.c_str());
  QueryLogConfig config;
  config.slow_threshold_millis = -1;
  config.sink_path = path;
  QueryLog::Global().Configure(std::move(config));

  engine::QueryEngine engine(*store);
  ASSERT_TRUE(engine.ExecuteText(kObsQuery).ok());
  ASSERT_TRUE(engine.ExecuteText(kObsQuery).ok());
  ASSERT_FALSE(engine
                   .ExecuteText(
                       "SELECT ?obs WHERE { ?obs a <http://test/Observation> }"
                       " ORDER BY ?nonexistent")
                   .ok());
  QueryLog::Global().Flush();
  // Detach the sink before reading (also closes the FILE*).
  QueryLog::Global().Configure(QueryLogConfig{});

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  size_t lines = 0;
  bool saw_hit = false, saw_error = false;
  while (std::getline(in, line)) {
    ++lines;
    std::string error;
    EXPECT_TRUE(IsValidJson(line, &error)) << error << "\n" << line;
    saw_hit = saw_hit || line.find("\"cache\": \"hit\"") != std::string::npos;
    saw_error =
        saw_error || line.find("\"status\": \"OK\"") == std::string::npos;
  }
  EXPECT_EQ(lines, 3u);
  EXPECT_TRUE(saw_hit);
  EXPECT_TRUE(saw_error);
  std::remove(path.c_str());
}

TEST_F(QueryLogTest, ToJsonLineIsValidAndCarriesTheSchema) {
  QueryRecord rec;
  rec.id = 7;
  rec.op = QueryOp::kEngineExecute;
  rec.fingerprint = 0xdeadbeefcafef00dull;
  rec.freeze_epoch = 3;
  rec.executor = 2;
  rec.cache = CacheOutcome::kMiss;
  rec.status = static_cast<uint8_t>(util::StatusCode::kTimeout);
  rec.degraded = true;
  rec.retries = 1;
  rec.rows_out = 42;
  rec.total_millis = 1.5;
  const std::string line = QueryLog::ToJsonLine(rec);
  std::string error;
  EXPECT_TRUE(IsValidJson(line, &error)) << error << "\n" << line;
  for (const char* key :
       {"\"id\": 7", "\"op\": \"engine.execute\"",
        "\"fingerprint\": \"deadbeefcafef00d\"", "\"epoch\": 3",
        "\"executor\": \"vectorized\"", "\"cache\": \"miss\"",
        "\"status\": \"Timeout\"", "\"degraded\": true", "\"retries\": 1",
        "\"rows\": 42", "\"total_ms\": 1.500"}) {
    EXPECT_NE(line.find(key), std::string::npos) << key << "\n" << line;
  }
}

// --- introspection report ----------------------------------------------------

TEST_F(QueryLogTest, IntrospectionReportAggregatesTheRing) {
  QueryLogConfig config;
  config.slow_threshold_millis = 0;  // capture something for the report
  QueryLog::Global().Configure(std::move(config));

  engine::QueryEngine engine(*store);
  ASSERT_TRUE(engine.ExecuteText(kObsQuery).ok());
  ASSERT_TRUE(engine.ExecuteText(kObsQuery).ok());
  ASSERT_FALSE(engine
                   .ExecuteText(
                       "SELECT ?obs WHERE { ?obs a <http://test/Observation> }"
                       " ORDER BY ?nonexistent")
                   .ok());

  std::ostringstream os;
  QueryLog::Global().WriteIntrospectionReport(os);
  const std::string report = os.str();
  // miss + hit + error-after-miss: one hit out of three cache probes.
  for (const char* expected :
       {"introspection report", "engine.execute", "cache hit 1/3",
        "-- error breakdown --", "-- top", "-- slow-query log --",
        "-- thread pool --", "-- metrics registry --", "p999"}) {
    EXPECT_NE(report.find(expected), std::string::npos)
        << "missing \"" << expected << "\" in:\n"
        << report;
  }
}

// --- concurrency (exercised under TSan in CI) --------------------------------

TEST_F(QueryLogTest, ConcurrentAppendSnapshotAndReport) {
  QueryLogConfig config;
  config.ring_capacity = 256;
  QueryLog::Global().Configure(std::move(config));

  const uint64_t before = QueryLog::Global().total_appended();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      QueryLog::Global().Snapshot();
      std::ostringstream os;
      QueryLog::Global().WriteIntrospectionReport(os, /*top_n=*/3);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        QueryRecord rec;
        rec.op = QueryOp::kSparqlExecute;
        rec.total_millis = 0.1;
        QueryLog::Global().Append(rec);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(QueryLog::Global().total_appended(),
            before + kThreads * kPerThread);
  std::vector<QueryRecord> recs = QueryLog::Global().Snapshot();
  EXPECT_LE(recs.size(), 256u);
  for (size_t i = 1; i < recs.size(); ++i) {
    EXPECT_GT(recs[i].id, recs[i - 1].id);
  }
}

}  // namespace
}  // namespace re2xolap::obs
