#!/usr/bin/env bash
# End-to-end exercise of the HTTP front door against a real build: boot
# re2xolap_server on a freshly built snapshot (in --live mode), drive it
# with real HTTP — health, metrics, a successful query, one
# guard-cancelled query (504: the arrival-anchored deadline expires
# inside an injected execution delay), one shed query (503 +
# Retry-After: capacity 1 + queue 1 and a third concurrent request),
# and an ingest round (POST /ingest applies a batch, the very next
# query sees the new triple, no restart) — then SIGTERM it and require
# a clean drain: exit code 0 and a schema-valid JSONL query log. Run in
# the Release and ASan jobs so the socket, ingest, drain, and log-flush
# paths stay exercised (and leak-clean) on every push.
set -euo pipefail

BUILD_DIR="${1:?usage: server_smoke.sh <build-dir>}"
SNAP_CLI="$BUILD_DIR/examples/re2xolap_snapshot"
SERVER="$BUILD_DIR/examples/re2xolap_server"
WORK="$BUILD_DIR/server_smoke"
rm -rf "$WORK"
mkdir -p "$WORK"

fail() { echo "server_smoke: $*" >&2; exit 1; }

cat > "$WORK/data.nt" <<'EOF'
<http://e/obs1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Obs> .
<http://e/obs1> <http://e/dest> <http://e/de> .
<http://e/obs1> <http://e/count> "42"^^xsd:integer .
<http://e/obs2> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Obs> .
<http://e/obs2> <http://e/dest> <http://e/fr> .
<http://e/obs2> <http://e/count> "7"^^xsd:integer .
<http://e/de> <http://e/label> "Germany" .
<http://e/fr> <http://e/label> "France" .
EOF

"$SNAP_CLI" build "$WORK/data.nt" "$WORK/data.snap" http://e/Obs

# Capacity 1 + queue 1 and a 500ms injected delay per engine execution:
# small enough to saturate with three curls, slow enough that a 50ms
# request deadline reliably expires mid-execution.
RE2XOLAP_FAILPOINTS="engine.execute=delay:500" \
  "$SERVER" "$WORK/data.snap" --port=0 --workers=1 --queue=1 --live \
  --query-log="$WORK/query_log.jsonl" > "$WORK/server.out" 2> "$WORK/server.err" &
SERVER_PID=$!
trap 'kill -9 "$SERVER_PID" 2>/dev/null || true' EXIT

# The bound (ephemeral) port is printed as "listening on <addr>:<port>".
PORT=""
for _ in $(seq 1 50); do
  PORT="$(sed -n 's/^listening on .*:\([0-9]*\)$/\1/p' "$WORK/server.out")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited before listening"
  sleep 0.1
done
[ -n "$PORT" ] || fail "server never printed its port"
BASE="http://127.0.0.1:$PORT"
# Distinct query texts per probe: the engine caches results by query, and
# a cache hit bypasses execution (and so the injected delay) entirely —
# reusing one text would let the timeout and shed probes answer from
# cache instead of exercising the guard and the admission queue.
QUERY='SELECT ?s WHERE { ?s a <http://e/Obs> }'
Q_TIMEOUT='SELECT ?t WHERE { ?t a <http://e/Obs> }'
Q_PIN1='SELECT ?p1 WHERE { ?p1 a <http://e/Obs> }'
Q_PIN2='SELECT ?p2 WHERE { ?p2 a <http://e/Obs> }'
Q_SHED='SELECT ?x WHERE { ?x a <http://e/Obs> }'
Q_INGEST='SELECT ?i WHERE { ?i a <http://e/Obs> }'

# Health + metrics.
curl -sf "$BASE/healthz" | grep -q '"status": "serving"' \
  || fail "healthz not serving"
curl -sf "$BASE/metrics" | grep -q '^server_requests' \
  || fail "metrics missing server_requests"

# A successful query (rides out the injected 500ms delay).
OK_BODY="$(curl -sf --max-time 10 -X POST --data "$QUERY" "$BASE/query")"
echo "$OK_BODY" | grep -q '"row_count": 2' \
  || fail "query did not return 2 observations: $OK_BODY"

# Guard-cancelled query: a 50ms deadline (anchored at arrival) expires
# inside the 500ms execution delay -> 504 Gateway Timeout.
CODE="$(curl -s --max-time 10 -o "$WORK/timeout.out" -w '%{http_code}' \
  -X POST --data "$Q_TIMEOUT" "$BASE/query?timeout_ms=50")"
[ "$CODE" = "504" ] || fail "deadline query returned $CODE, want 504"

# Shed: with the single worker pinned and the queue holding one request,
# a third concurrent query must be refused with 503 + Retry-After.
curl -s --max-time 10 -X POST --data "$Q_PIN1" "$BASE/query" > /dev/null &
C1=$!
curl -s --max-time 10 -X POST --data "$Q_PIN2" "$BASE/query" > /dev/null &
C2=$!
sleep 0.2
SHED="$(curl -si --max-time 10 -X POST --data "$Q_SHED" "$BASE/query")"
wait "$C1" "$C2"
echo "$SHED" | head -1 | grep -q '503' || fail "third query was not shed: $SHED"
echo "$SHED" | grep -qi '^retry-after:' || fail "shed response lacks Retry-After"

# Ingest round: the server booted with --live, so POST /ingest applies
# an N-Triples batch atomically and the very next query must see the
# new observation — no re-freeze, no restart.
curl -sf "$BASE/healthz" | grep -q '"live": true' \
  || fail "healthz does not report the store live"
INGEST_BODY="$(curl -sf --max-time 10 -X POST --data \
  '<http://e/obs3> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Obs> .' \
  "$BASE/ingest")"
echo "$INGEST_BODY" | grep -q '"added": 1' \
  || fail "ingest did not apply the batch: $INGEST_BODY"
AFTER_BODY="$(curl -sf --max-time 10 -X POST --data "$Q_INGEST" "$BASE/query")"
echo "$AFTER_BODY" | grep -q '"row_count": 3' \
  || fail "query after ingest did not see 3 observations: $AFTER_BODY"

# SIGTERM -> graceful drain: the process must exit 0 on its own.
kill -TERM "$SERVER_PID"
RC=0
wait "$SERVER_PID" || RC=$?
[ "$RC" -eq 0 ] || fail "server exited $RC after SIGTERM (want 0)"
trap - EXIT

# The drain flushed the query log; every line must be a schema-valid
# record (same contract as query_log_smoke.sh).
test -s "$WORK/query_log.jsonl" || fail "drain wrote no query-log lines"
python3 - "$WORK/query_log.jsonl" <<'EOF'
import json, sys

required = {
    "id", "op", "fingerprint", "epoch", "executor", "cache", "status",
    "degraded", "retries", "rows", "scanned", "bindings", "plan_ms",
    "exec_ms", "total_ms", "start_us",
}
n = 0
with open(sys.argv[1]) as f:
    for lineno, line in enumerate(f, 1):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            sys.exit(f"line {lineno}: invalid JSON: {e}")
        missing = required - rec.keys()
        if missing:
            sys.exit(f"line {lineno}: missing keys {sorted(missing)}")
        n += 1
print(f"server_smoke: query log OK ({n} records)")
EOF

echo "server_smoke: OK (port $PORT)"
