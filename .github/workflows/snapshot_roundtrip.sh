#!/usr/bin/env bash
# End-to-end exercise of the snapshot subsystem against a real build:
# build an image from N-Triples, verify it, export it back (must be the
# same triple set), then flip one bit and require verification to fail.
# Run under each sanitizer job so the loader's corruption paths stay
# ASan/TSan-clean.
set -euo pipefail

BUILD_DIR="${1:?usage: snapshot_roundtrip.sh <build-dir>}"
CLI="$BUILD_DIR/examples/re2xolap_snapshot"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

cat > "$WORK/data.nt" <<'EOF'
<http://e/obs1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Obs> .
<http://e/obs1> <http://e/dest> <http://e/de> .
<http://e/obs1> <http://e/count> "42"^^xsd:integer .
<http://e/obs2> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Obs> .
<http://e/obs2> <http://e/dest> <http://e/fr> .
<http://e/obs2> <http://e/count> "7"^^xsd:integer .
<http://e/de> <http://e/label> "Germany" .
<http://e/fr> <http://e/label> "France" .
EOF

"$CLI" build "$WORK/data.nt" "$WORK/data.snap" http://e/Obs
"$CLI" inspect "$WORK/data.snap"
"$CLI" verify "$WORK/data.snap"

"$CLI" export "$WORK/data.snap" "$WORK/export.nt"
sort "$WORK/data.nt" > "$WORK/a"
sort "$WORK/export.nt" > "$WORK/b"
diff "$WORK/a" "$WORK/b"

# Flip one bit mid-file; verification must now fail with a typed error.
python3 - "$WORK/data.snap" <<'EOF'
import pathlib, sys
p = pathlib.Path(sys.argv[1])
b = bytearray(p.read_bytes())
b[len(b) // 2] ^= 0x40
p.write_bytes(b)
EOF
if "$CLI" verify "$WORK/data.snap"; then
  echo "ERROR: verify succeeded on a corrupted image" >&2
  exit 1
fi
echo "snapshot round-trip OK"
