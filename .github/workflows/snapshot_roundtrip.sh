#!/usr/bin/env bash
# End-to-end exercise of the snapshot subsystem against a real build:
# build an image from N-Triples, verify it, export it back (must be the
# same triple set), then flip one bit and require verification to fail.
# Runs the whole round twice — once with the legacy raw index format
# (version-1 image) and once with the compressed block format (version-2
# image with per-block checksums) — and cross-checks that both images
# export the identical triple set. Run under each sanitizer job so the
# loader's corruption paths stay ASan/TSan-clean.
set -euo pipefail

BUILD_DIR="${1:?usage: snapshot_roundtrip.sh <build-dir>}"
CLI="$BUILD_DIR/examples/re2xolap_snapshot"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

cat > "$WORK/data.nt" <<'EOF'
<http://e/obs1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Obs> .
<http://e/obs1> <http://e/dest> <http://e/de> .
<http://e/obs1> <http://e/count> "42"^^xsd:integer .
<http://e/obs2> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Obs> .
<http://e/obs2> <http://e/dest> <http://e/fr> .
<http://e/obs2> <http://e/count> "7"^^xsd:integer .
<http://e/de> <http://e/label> "Germany" .
<http://e/fr> <http://e/label> "France" .
EOF

sort "$WORK/data.nt" > "$WORK/expected"

round_trip() {
  local format="$1"
  local snap="$WORK/data-$format.snap"
  "$CLI" build "--format=$format" "$WORK/data.nt" "$snap" http://e/Obs
  "$CLI" inspect "$snap"
  "$CLI" verify "$snap"

  "$CLI" export "$snap" "$WORK/export-$format.nt"
  sort "$WORK/export-$format.nt" > "$WORK/got-$format"
  diff "$WORK/expected" "$WORK/got-$format"

  # Flip one bit inside the last section's payload (a blind mid-file flip
  # can land in 64-byte alignment padding, which no checksum covers);
  # verification must now fail with a typed error.
  read -r off len < <("$CLI" inspect "$snap" |
    awk -F'[= ]+' '/offset=/{o=$4; b=$6} END{print o, b}')
  python3 - "$snap" "$off" "$len" <<'PYEOF'
import pathlib, sys
p = pathlib.Path(sys.argv[1])
off, ln = int(sys.argv[2]), int(sys.argv[3])
b = bytearray(p.read_bytes())
b[off + ln // 2] ^= 0x40
p.write_bytes(b)
PYEOF
  if "$CLI" verify "$snap"; then
    echo "ERROR: verify succeeded on a corrupted $format image" >&2
    exit 1
  fi
}

round_trip raw
round_trip compressed

# The two formats must export the identical triple set.
diff "$WORK/got-raw" "$WORK/got-compressed"
echo "snapshot round-trip OK (raw + compressed)"
