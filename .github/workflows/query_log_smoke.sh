#!/usr/bin/env bash
# End-to-end exercise of the query telemetry layer against a real build:
# run the quickstart with the JSONL query-log sink and the Chrome-trace
# sink enabled, then require every emitted JSONL line to be a valid JSON
# object carrying the full record schema, and the trace to be valid JSON.
# Outputs stay under <build-dir>/query_log_smoke so CI can upload them as
# an artifact when validation fails.
set -euo pipefail

BUILD_DIR="${1:?usage: query_log_smoke.sh <build-dir>}"
QUICKSTART="$BUILD_DIR/examples/quickstart"
WORK="$BUILD_DIR/query_log_smoke"
rm -rf "$WORK"
mkdir -p "$WORK"

RE2XOLAP_QUERY_LOG="$WORK/query_log.jsonl" \
RE2XOLAP_TRACE="$WORK/trace.json" \
  "$QUICKSTART" > "$WORK/quickstart.out"

test -s "$WORK/query_log.jsonl" || {
  echo "query_log_smoke: quickstart wrote no query-log lines" >&2
  exit 1
}

python3 - "$WORK/query_log.jsonl" "$WORK/trace.json" <<'EOF'
import json, sys

log_path, trace_path = sys.argv[1], sys.argv[2]
required = {
    "id", "op", "fingerprint", "epoch", "executor", "cache", "status",
    "degraded", "retries", "rows", "scanned", "bindings", "plan_ms",
    "exec_ms", "total_ms", "start_us",
}

n = 0
last_id = 0
with open(log_path) as f:
    for lineno, line in enumerate(f, 1):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            sys.exit(f"line {lineno}: invalid JSON: {e}")
        if not isinstance(rec, dict):
            sys.exit(f"line {lineno}: not a JSON object")
        missing = required - rec.keys()
        if missing:
            sys.exit(f"line {lineno}: missing keys {sorted(missing)}")
        if rec["id"] <= last_id:
            sys.exit(f"line {lineno}: ids not strictly increasing")
        last_id = rec["id"]
        n += 1
if n == 0:
    sys.exit("query log is empty")

with open(trace_path) as f:
    trace = json.load(f)
if not trace.get("traceEvents"):
    sys.exit("trace has no events")

print(f"query_log_smoke: {n} valid records, "
      f"{len(trace['traceEvents'])} trace events")
EOF
